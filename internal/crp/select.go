package crp

import (
	"context"
	"fmt"
	"math"
	"sort"
	"time"

	"github.com/crp-eda/crp/internal/geom"
	"github.com/crp-eda/crp/internal/ilp"
	"github.com/crp-eda/crp/internal/view"
)

// Iterate runs one CR&P iteration (the five phases of Fig. 1's middle box)
// and returns its statistics.
//
// The iteration is transactional: the update-database phase runs inside a
// view transaction (view.Txn), and the transaction's invariant check — an
// O(Δ) diff of the demand journal against the route swaps, plus placement
// legality — gates the commit. On violation the whole iteration is
// discarded — moved cells restored, rerouted nets re-committed to their
// old routes — so a bad iteration can degrade quality but never corrupt the
// design. Cfg.IterTimeout (and any deadline already on ctx) bounds the
// iteration; expiry stops it before the next uncommitted phase.
func (e *Engine) Iterate(ctx context.Context) IterStats {
	if e.Cfg.ShardRegions > 0 {
		return e.iterateSharded(ctx)
	}
	e.iter++
	// The demand version at iteration entry: the read phases (label, GCP,
	// ECC, selection) must not mutate demand, which the transaction's epoch
	// accounting verifies against this value.
	epoch0 := e.V.Version()
	var st IterStats
	deg := func(kind, detail string) {
		st.Degradations = append(st.Degradations, Degradation{Iter: e.iter, Kind: kind, Detail: detail})
	}
	if e.Cfg.IterTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, e.Cfg.IterTimeout)
		defer cancel()
	}

	t0 := time.Now()
	critical := e.labelCriticalCells()
	st.Times.Label = time.Since(t0)
	st.Criticals = len(critical)
	for _, id := range critical {
		e.D.MarkCritical(id)
	}
	if len(critical) == 0 {
		return st
	}

	t0 = time.Now()
	ls0 := e.L.Stats()
	run0, solve0 := e.L.Timing()
	// The placement is frozen until the UD phase applies the selection, so
	// the whole fan-out is one legalizer pass: medians memoised by one Run
	// stay valid for every later Run this iteration.
	e.L.BeginPass()
	cands, quarGCP := e.generateCandidates(ctx, critical)
	st.Times.GCP = time.Since(t0)
	run1, solve1 := e.L.Timing()
	st.Times.GCPILP = solve1 - solve0
	st.Times.GCPGen = (run1 - run0) - st.Times.GCPILP
	for _, q := range quarGCP {
		deg("worker-panic", fmt.Sprintf("GCP cell #%d quarantined: %s", q.index, q.msg))
	}
	st.Quarantined += len(quarGCP)
	ls1 := e.L.Stats()
	if n := ls1.IncumbentKept - ls0.IncumbentKept; n > 0 {
		deg("legal-incumbent", fmt.Sprintf("%d legalizer ILPs hit their budget; kept best incumbent", n))
	}
	if n := ls1.BudgetDropped - ls0.BudgetDropped; n > 0 {
		deg("legal-dropped", fmt.Sprintf("%d legalizer ILPs hit their budget with no incumbent; candidates dropped", n))
	}
	for _, cs := range cands {
		st.Candidates += len(cs)
	}

	t0 = time.Now()
	quarECC := e.estimateCosts(ctx, cands)
	st.Times.ECC = time.Since(t0)
	for _, q := range quarECC {
		deg("worker-panic", fmt.Sprintf("ECC group #%d quarantined: %s", q.index, q.msg))
	}
	st.Quarantined += len(quarECC)

	// Deadline gate: selection + UD start only with time on the clock. An
	// iteration abandoned here has changed nothing — GCP/ECC only read the
	// design — so stopping is free.
	if err := ctx.Err(); err != nil {
		st.DeadlineHit = true
		deg("iteration-deadline", "stopped before selection: "+err.Error())
		return st
	}

	t0 = time.Now()
	chosen, sol, usedGreedy := e.selectCandidates(ctx, cands)
	st.Times.ILP = time.Since(t0)
	st.SolverNodes = sol.Nodes
	st.SolverStatus = sol.Status
	if usedGreedy {
		st.GreedyFallback = true
		deg("selection-fallback", fmt.Sprintf("selection ILP %v; greedy improving selection took over", sol.Status))
	}

	// EstBefore/EstAfter compare the selected moves against staying put,
	// on the same Algorithm 3 cost scale.
	curCost := make(map[int32]float64, len(cands))
	for i := range cands {
		for j := range cands[i] {
			if cands[i][j].isCurrent {
				curCost[cands[i][j].cell] = cands[i][j].cost
			}
		}
	}

	t0 = time.Now()
	txn := e.V.Begin(epoch0)
	moved := e.applyMoves(txn, chosen, curCost, &st)
	if h := e.Cfg.Hooks.PostUD; h != nil {
		h(e.iter)
	}
	if err := txn.Check(); err != nil {
		txn.Discard()
		st.RolledBack = true
		st.MovedCells, st.ReroutedNets, st.SkippedMoves = 0, 0, 0
		st.EstBefore, st.EstAfter = 0, 0
		deg("iteration-rollback", err.Error())
		// The discard restored the transaction's own writes; the full-scan
		// check verifies nothing outside the transaction is still broken.
		if err2 := e.checkInvariants(); err2 != nil {
			// Discard failed to restore consistency: latch the engine so
			// the run stops instead of compounding the corruption.
			e.broken = true
			deg("invariant-unrecoverable", err2.Error())
		}
	} else {
		txn.Commit()
		// History marking happens only on a kept iteration so a discarded
		// move does not dampen the cell's future re-selection.
		for _, id := range moved {
			e.D.MarkMoved(id)
		}
	}
	st.Times.UD = time.Since(t0)
	if ctx.Err() != nil {
		st.DeadlineHit = true
		deg("iteration-deadline", "deadline expired during update-database (completed transactionally)")
	}
	return st
}

// checkInvariants is the full-scan variant of the invariant check: the
// grid's demand totals are exactly the committed routes plus the
// construction-time residual (no leaked or double-counted rip-ups), and
// every cell sits at a legal position. The per-iteration gate runs the O(Δ)
// transactional check instead (view.Txn.Check); this scan remains for the
// places with no transaction diff to check against — validating a restored
// checkpoint, and verifying consistency after a discard.
func (e *Engine) checkInvariants() error {
	sumW, sumV := e.routeDemand()
	if drift := e.G.TotalWireUsage() - sumW - e.resWire; math.Abs(drift) > 1e-6 {
		return fmt.Errorf("grid wire demand drift %+g (total %g, routes %g, residual %g)",
			drift, e.G.TotalWireUsage(), sumW, e.resWire)
	}
	if drift := e.G.TotalViaCount() - sumV - e.resVia; math.Abs(drift) > 1e-6 {
		return fmt.Errorf("grid via demand drift %+g (total %g, routes %g, residual %g)",
			drift, e.G.TotalViaCount(), sumV, e.resVia)
	}
	if err := e.D.Validate(); err != nil {
		return fmt.Errorf("placement illegal: %w", err)
	}
	return nil
}

// cellCands is one critical cell still in play after pruning: its index
// into the candidate table and the candidate indices worth modelling.
type cellCands struct {
	ci   int
	list []int // candidate indices within cands[ci], current first
}

// pruneDominated is the exact pruning pass of the Eq. 12 selection: a move
// candidate whose estimated cost is not below its cell's stay-put cost is
// dominated and dropped; cells left with no improving candidate are fixed
// to their current position (returned in ascending cell-index order, the
// prefix of the serial chosen order). The remaining cells come back as the
// active set, also ascending. It is a pure function of the candidates'
// costs, so the sharded merge can re-run it globally to reconstruct the
// serial chosen order from per-region solutions.
func pruneDominated(cands [][]candidate) (fixed []*candidate, active []cellCands) {
	for i, cs := range cands {
		curIdx := -1
		for j := range cs {
			if cs[j].isCurrent {
				curIdx = j
				break
			}
		}
		if curIdx < 0 {
			curIdx = 0 // defensive: treat the first as current
		}
		cur := cs[curIdx].cost
		keep := []int{curIdx}
		for j := range cs {
			if j != curIdx && cs[j].cost < cur-1e-9 {
				keep = append(keep, j)
			}
		}
		if len(keep) == 1 {
			fixed = append(fixed, &cands[i][curIdx])
			continue
		}
		active = append(active, cellCands{i, keep})
	}
	return fixed, active
}

// selectCandidates builds and solves the Eq. 12 selection ILP: one
// candidate per critical cell; candidates of different cells that move the
// same cell or whose moved footprints overlap exclude each other.
//
// Exact pruning shrinks the model first: a move candidate whose estimated
// cost is not below its cell's stay-put cost is dominated — replacing it
// with "stay" in any feasible solution stays feasible (staying occupies
// nothing new) and does not increase the objective — so it is dropped, and
// cells left with no improving candidate are fixed to their current
// position outside the model.
//
// Degradation ladder: a solve that ends LimitReached or Infeasible — or a
// ctx deadline that expires before the solve can start — drops to the
// greedy improving selection below (usedGreedy=true). The greedy path is
// always feasible and never worse than everyone staying put.
func (e *Engine) selectCandidates(ctx context.Context, cands [][]candidate) (_ []*candidate, _ ilp.Solution, usedGreedy bool) {
	chosen, active := pruneDominated(cands)
	if len(active) == 0 {
		return chosen, ilp.Solution{Status: ilp.Optimal, HasIncumbent: true}, false
	}

	m := ilp.NewModel()
	type varRef struct {
		ci, cj int // indices into cands
	}
	var refs []varRef

	// Per-cell "exactly one" constraints.
	for _, cc := range active {
		terms := make([]ilp.Term, 0, len(cc.list))
		for _, j := range cc.list {
			v := m.AddBinary("", cands[cc.ci][j].cost)
			refs = append(refs, varRef{cc.ci, j})
			terms = append(terms, ilp.Term{Var: v, Coef: 1})
		}
		m.AddConstraint("pick-one", terms, ilp.EQ, 1)
	}

	// Exclusion constraints. A spatial hash over moved footprints (at
	// site granularity) and a moved-cell index find colliding pairs
	// without the quadratic sweep.
	sw := e.D.Tech.Site.Width
	siteOwners := map[[2]int][]int{} // (row, siteX) -> var indices
	cellMovers := map[int32][]int{}  // moved cell -> var indices
	for vi, ref := range refs {
		c := &cands[ref.ci][ref.cj]
		if c.isCurrent {
			continue // staying put occupies what it already owns
		}
		for _, mc := range c.movedCells() {
			cellMovers[mc] = append(cellMovers[mc], vi)
			var p geom.Point
			if mc == c.cell {
				p = c.pos
			} else {
				p = c.conflicts[mc]
			}
			w := e.D.Cells[mc].Macro.Width
			row, ok := e.D.RowAt(p.Y)
			if !ok {
				continue
			}
			for x := p.X; x < p.X+w; x += sw {
				key := [2]int{int(row.Index), x}
				siteOwners[key] = append(siteOwners[key], vi)
			}
		}
	}
	// Emit exclusion pairs in sorted key order so the model (and thus any
	// solver tie-breaking) is deterministic run to run.
	pairSeen := map[[2]int]bool{}
	addPair := func(a, b int) {
		if refs[a].ci == refs[b].ci {
			return // same critical cell: covered by pick-one
		}
		if a > b {
			a, b = b, a
		}
		if pairSeen[[2]int{a, b}] {
			return
		}
		pairSeen[[2]int{a, b}] = true
		m.AddConstraint("excl",
			[]ilp.Term{{Var: ilp.VarID(a), Coef: 1}, {Var: ilp.VarID(b), Coef: 1}}, ilp.LE, 1)
	}
	siteKeys := make([][2]int, 0, len(siteOwners))
	for k := range siteOwners {
		siteKeys = append(siteKeys, k)
	}
	sort.Slice(siteKeys, func(a, b int) bool {
		if siteKeys[a][0] != siteKeys[b][0] {
			return siteKeys[a][0] < siteKeys[b][0]
		}
		return siteKeys[a][1] < siteKeys[b][1]
	})
	for _, k := range siteKeys {
		vs := siteOwners[k]
		for i := 0; i < len(vs); i++ {
			for j := i + 1; j < len(vs); j++ {
				addPair(vs[i], vs[j])
			}
		}
	}
	moverKeys := make([]int32, 0, len(cellMovers))
	for k := range cellMovers {
		moverKeys = append(moverKeys, k)
	}
	sort.Slice(moverKeys, func(a, b int) bool { return moverKeys[a] < moverKeys[b] })
	for _, k := range moverKeys {
		vs := cellMovers[k]
		for i := 0; i < len(vs); i++ {
			for j := i + 1; j < len(vs); j++ {
				addPair(vs[i], vs[j])
			}
		}
	}

	// Solve budget: the configured node cap, the configured per-solve time
	// limit, and whatever remains of the iteration deadline — whichever is
	// tightest. A deadline already in the past skips the solve entirely.
	opt := ilp.Options{
		MaxNodes:              e.Cfg.SelectMaxNodes,
		TimeLimit:             e.Cfg.ILPTimeLimit,
		DisableSolverFastPath: e.Cfg.DisableSolverFastPath,
	}
	skipSolve := false
	if dl, ok := ctx.Deadline(); ok {
		rem := time.Until(dl)
		if rem <= 0 {
			skipSolve = true
		} else if opt.TimeLimit == 0 || rem < opt.TimeLimit {
			opt.TimeLimit = rem
		}
	}
	if h := e.Cfg.Hooks.ILPOptions; h != nil {
		opt = h(opt)
	}
	var sol ilp.Solution
	if skipSolve {
		sol = ilp.Solution{Status: ilp.LimitReached}
	} else if h := e.Cfg.Hooks.SolveSelection; h != nil {
		sol = h(m, opt)
	} else {
		sol = m.Solve(opt)
	}
	if sol.Status == ilp.Optimal {
		for vi, ref := range refs {
			if sol.Value(ilp.VarID(vi)) {
				chosen = append(chosen, &cands[ref.ci][ref.cj])
			}
		}
		return chosen, sol, false
	}

	// Budget exhausted (or infeasible under an injected fault): fall back
	// to a greedy improving selection — best gain first, skipping any move
	// that collides with an already-accepted one. A LimitReached incumbent
	// is deliberately not used here: unlike the legalizer's window models,
	// Eq. 12 incumbents from a truncated search have shown no quality edge
	// over the greedy order, and one fallback path is easier to reason
	// about than two.
	type pick struct {
		cc   cellCands
		best int // candidate index, -1 = stay
		gain float64
	}
	picks := make([]pick, 0, len(active))
	for _, cc := range active {
		cur := cands[cc.ci][cc.list[0]].cost
		best, bestCost := -1, cur
		for _, j := range cc.list[1:] {
			if c := cands[cc.ci][j].cost; c < bestCost {
				best, bestCost = j, c
			}
		}
		picks = append(picks, pick{cc, best, cur - bestCost})
	}
	sort.Slice(picks, func(a, b int) bool {
		if picks[a].gain != picks[b].gain {
			return picks[a].gain > picks[b].gain
		}
		return picks[a].cc.ci < picks[b].cc.ci
	})
	claimedSites := map[[2]int]bool{}
	claimedCells := map[int32]bool{}

	for _, p := range picks {
		cur := &cands[p.cc.ci][p.cc.list[0]]
		if p.best < 0 {
			chosen = append(chosen, cur)
			continue
		}
		cand := &cands[p.cc.ci][p.best]
		ok := true
		var sites [][2]int
		var movers []int32
		for _, mc := range cand.movedCells() {
			if claimedCells[mc] {
				ok = false
				break
			}
			movers = append(movers, mc)
			pos := cand.pos
			if mc != cand.cell {
				pos = cand.conflicts[mc]
			}
			row, okr := e.D.RowAt(pos.Y)
			if !okr {
				ok = false
				break
			}
			w := e.D.Cells[mc].Macro.Width
			for x := pos.X; x < pos.X+w; x += sw {
				key := [2]int{int(row.Index), x}
				if claimedSites[key] {
					ok = false
					break
				}
				sites = append(sites, key)
			}
			if !ok {
				break
			}
		}
		if !ok {
			chosen = append(chosen, cur)
			continue
		}
		for _, s := range sites {
			claimedSites[s] = true
		}
		for _, mc := range movers {
			claimedCells[mc] = true
		}
		chosen = append(chosen, cand)
	}
	return chosen, sol, true
}

// applyMoves is the Update Database phase: commit the selected moves and
// rip-up & reroute every net touching a moved cell, all through the
// iteration's view transaction (which captures what a discard needs). It
// returns the moved cell IDs — history marking is deferred until the
// transaction's invariant check passes.
func (e *Engine) applyMoves(txn *view.Txn, chosen []*candidate, curCost map[int32]float64, st *IterStats) (moved []int32) {
	movedCells := e.applyMoveSet(txn, chosen, curCost, st)

	// Reroute all nets touching moved cells, in deterministic order; the
	// transaction records each net's pre-iteration route on first touch.
	nets := e.affectedNets(movedCells)
	for _, nid := range nets {
		txn.RerouteNet(nid)
	}
	st.ReroutedNets = len(nets)
	return sortedCellIDs(movedCells)
}

// applyMoveSet commits the position half of the Update Database phase:
// every selected non-current candidate's move group goes through the
// transaction, with the estimation bookkeeping (EstBefore/EstAfter sums in
// chosen order — float addition order is part of the bit-identity contract)
// and the skipped-move accounting. The reroute half is the caller's; the
// sharded merge interleaves it with conflict tracking.
func (e *Engine) applyMoveSet(txn *view.Txn, chosen []*candidate, curCost map[int32]float64, st *IterStats) map[int32]bool {
	movedCells := map[int32]bool{}
	for _, c := range chosen {
		if c.isCurrent {
			continue
		}
		st.EstBefore += curCost[c.cell]
		st.EstAfter += c.cost
		moves := map[int32]geom.Point{c.cell: c.pos}
		for id, p := range c.conflicts {
			moves[id] = p
		}
		if err := txn.MoveCells(moves); err != nil {
			// The exclusion constraints should make this unreachable;
			// count it rather than corrupting the placement.
			st.SkippedMoves++
			continue
		}
		for id := range moves {
			movedCells[id] = true
		}
	}
	st.MovedCells = len(movedCells)
	return movedCells
}

// affectedNets returns every net touching a moved cell, ascending.
func (e *Engine) affectedNets(movedCells map[int32]bool) []int32 {
	netSet := map[int32]bool{}
	for id := range movedCells {
		for _, nid := range e.D.Cells[id].Nets {
			netSet[nid] = true
		}
	}
	return sortedCellIDs(netSet)
}

// sortedCellIDs flattens an ID set into an ascending slice.
func sortedCellIDs(set map[int32]bool) []int32 {
	out := make([]int32, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}
