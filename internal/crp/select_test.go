package crp

import (
	"context"
	"testing"
	"time"

	"github.com/crp-eda/crp/internal/geom"
	"github.com/crp-eda/crp/internal/ilp"
)

// Unit tests for the Eq. 12 selection ILP over hand-built candidate sets,
// independent of the full pipeline.

// selFixture builds an engine over a small design without routing (the
// selection logic only needs the design geometry).
func selFixture(t *testing.T) *Engine {
	t.Helper()
	d, g, r := fixture(t, 120, 80, 55)
	return New(d, g, r, smallConfig(1))
}

func TestSelectPrefersCheapestCandidate(t *testing.T) {
	e := selFixture(t)
	c0 := e.D.Cells[0]
	cur := c0.Pos
	alt := findFreeSlotFor(t, e, 0)
	cands := [][]candidate{{
		{cell: 0, pos: cur, conflicts: map[int32]geom.Point{}, isCurrent: true, cost: 10},
		{cell: 0, pos: alt, conflicts: map[int32]geom.Point{}, cost: 4},
	}}
	chosen, sol, _ := e.selectCandidates(context.Background(), cands)
	if sol.Status != ilp.Optimal {
		t.Fatalf("status %v", sol.Status)
	}
	if len(chosen) != 1 || chosen[0].pos != alt {
		t.Fatalf("chose %+v, want the cheap move", chosen)
	}
}

func TestSelectKeepsCurrentWhenMovesAreWorse(t *testing.T) {
	e := selFixture(t)
	alt := findFreeSlotFor(t, e, 0)
	cands := [][]candidate{{
		{cell: 0, pos: e.D.Cells[0].Pos, conflicts: map[int32]geom.Point{}, isCurrent: true, cost: 3},
		{cell: 0, pos: alt, conflicts: map[int32]geom.Point{}, cost: 5},
	}}
	chosen, _, _ := e.selectCandidates(context.Background(), cands)
	if len(chosen) != 1 || !chosen[0].isCurrent {
		t.Fatalf("should stay put: %+v", chosen)
	}
}

func TestSelectExcludesOverlappingTargets(t *testing.T) {
	e := selFixture(t)
	// Two cells want the same free slot; only one may take it.
	slot := findFreeSlotFor(t, e, 0)
	// Ensure the slot also fits cell 1 (same macro widths may differ —
	// use cell 0's macro width for both footprint checks by picking cells
	// with the same macro).
	var other int32 = -1
	for _, c := range e.D.Cells[1:] {
		if c.Macro == e.D.Cells[0].Macro {
			other = c.ID
			break
		}
	}
	if other < 0 {
		t.Skip("no second cell with matching macro")
	}
	mk := func(cell int32, cost float64) []candidate {
		return []candidate{
			{cell: cell, pos: e.D.Cells[cell].Pos, conflicts: map[int32]geom.Point{}, isCurrent: true, cost: 10},
			{cell: cell, pos: slot, conflicts: map[int32]geom.Point{}, cost: cost},
		}
	}
	cands := [][]candidate{mk(0, 1), mk(other, 2)}
	chosen, sol, _ := e.selectCandidates(context.Background(), cands)
	if sol.Status != ilp.Optimal {
		t.Fatalf("status %v", sol.Status)
	}
	movedToSlot := 0
	for _, c := range chosen {
		if !c.isCurrent && c.pos == slot {
			movedToSlot++
		}
	}
	if movedToSlot != 1 {
		t.Fatalf("%d candidates took the same slot", movedToSlot)
	}
}

func TestSelectExcludesSharedConflictCell(t *testing.T) {
	e := selFixture(t)
	slotA := findFreeSlotFor(t, e, 0)
	// Candidate of cell 0 relocates cell 2; candidate of cell 1 also
	// relocates cell 2 (to a different spot). They must not both win.
	slotB := geom.Pt(slotA.X, slotA.Y) // same spot is fine for the footprint of c2
	cands := [][]candidate{
		{
			{cell: 0, pos: e.D.Cells[0].Pos, conflicts: map[int32]geom.Point{}, isCurrent: true, cost: 100},
			{cell: 0, pos: e.D.Cells[0].Pos.Add(geom.Pt(0, 0)), conflicts: map[int32]geom.Point{2: slotA}, cost: 1},
		},
		{
			{cell: 1, pos: e.D.Cells[1].Pos, conflicts: map[int32]geom.Point{}, isCurrent: true, cost: 100},
			{cell: 1, pos: e.D.Cells[1].Pos.Add(geom.Pt(0, 0)), conflicts: map[int32]geom.Point{2: slotB}, cost: 1},
		},
	}
	chosen, sol, _ := e.selectCandidates(context.Background(), cands)
	if sol.Status != ilp.Optimal {
		t.Fatalf("status %v", sol.Status)
	}
	movers := 0
	for _, c := range chosen {
		if !c.isCurrent {
			movers++
		}
	}
	if movers > 1 {
		t.Fatalf("both candidates moving cell 2 were selected")
	}
}

func TestSelectPrunesDominatedCandidates(t *testing.T) {
	e := selFixture(t)
	alt := findFreeSlotFor(t, e, 0)
	// All moves cost >= current: model should be empty (0 solver nodes).
	cands := [][]candidate{{
		{cell: 0, pos: e.D.Cells[0].Pos, conflicts: map[int32]geom.Point{}, isCurrent: true, cost: 1},
		{cell: 0, pos: alt, conflicts: map[int32]geom.Point{}, cost: 1}, // tie: dominated
	}}
	chosen, sol, _ := e.selectCandidates(context.Background(), cands)
	if len(chosen) != 1 || !chosen[0].isCurrent {
		t.Fatalf("dominated candidate selected: %+v", chosen)
	}
	if sol.Nodes != 0 {
		t.Errorf("pruning should avoid the solver entirely, spent %d nodes", sol.Nodes)
	}
}

// TestSelectFallbackLadder is the degradation-ladder table test: every
// non-Optimal solver outcome — LimitReached with and without an incumbent,
// and Infeasible — must drive selection onto the greedy fallback without
// panicking, and the greedy path must still take the improving move.
func TestSelectFallbackLadder(t *testing.T) {
	cases := []struct {
		name string
		sol  func(m *ilp.Model) ilp.Solution
	}{
		{"limit-with-incumbent", func(m *ilp.Model) ilp.Solution {
			// An incumbent exists but the search hit its budget; Values is
			// populated (all zero) and must NOT be trusted for selection.
			return ilp.Solution{
				Status:       ilp.LimitReached,
				HasIncumbent: true,
				Values:       make([]int8, m.NumVars()),
			}
		}},
		{"limit-no-incumbent", func(m *ilp.Model) ilp.Solution {
			// Budget hit before any feasible point: Values is nil, which is
			// exactly the shape that used to crash unguarded indexing.
			return ilp.Solution{Status: ilp.LimitReached}
		}},
		{"infeasible", func(m *ilp.Model) ilp.Solution {
			return ilp.Solution{Status: ilp.Infeasible}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e := selFixture(t)
			e.Cfg.Hooks.SolveSelection = func(m *ilp.Model, opt ilp.Options) ilp.Solution {
				return tc.sol(m)
			}
			alt := findFreeSlotFor(t, e, 0)
			cands := [][]candidate{{
				{cell: 0, pos: e.D.Cells[0].Pos, conflicts: map[int32]geom.Point{}, isCurrent: true, cost: 10},
				{cell: 0, pos: alt, conflicts: map[int32]geom.Point{}, cost: 4},
			}}
			chosen, sol, usedGreedy := e.selectCandidates(context.Background(), cands)
			if !usedGreedy {
				t.Fatalf("status %v did not fall back to greedy", sol.Status)
			}
			if len(chosen) != 1 || chosen[0].isCurrent || chosen[0].pos != alt {
				t.Fatalf("greedy fallback missed the improving move: %+v", chosen)
			}
		})
	}
}

// TestSelectFallbackRespectsExclusions: the greedy fallback must honour the
// same exclusion semantics as the ILP — two improving candidates targeting
// the same slot cannot both win.
func TestSelectFallbackRespectsExclusions(t *testing.T) {
	e := selFixture(t)
	e.Cfg.Hooks.SolveSelection = func(m *ilp.Model, opt ilp.Options) ilp.Solution {
		return ilp.Solution{Status: ilp.LimitReached}
	}
	slot := findFreeSlotFor(t, e, 0)
	var other int32 = -1
	for _, c := range e.D.Cells[1:] {
		if c.Macro == e.D.Cells[0].Macro {
			other = c.ID
			break
		}
	}
	if other < 0 {
		t.Skip("no second cell with matching macro")
	}
	mk := func(cell int32, cost float64) []candidate {
		return []candidate{
			{cell: cell, pos: e.D.Cells[cell].Pos, conflicts: map[int32]geom.Point{}, isCurrent: true, cost: 10},
			{cell: cell, pos: slot, conflicts: map[int32]geom.Point{}, cost: cost},
		}
	}
	chosen, _, usedGreedy := e.selectCandidates(context.Background(), [][]candidate{mk(0, 1), mk(other, 2)})
	if !usedGreedy {
		t.Fatal("forced LimitReached did not reach the greedy path")
	}
	movedToSlot := 0
	var winner *candidate
	for _, c := range chosen {
		if !c.isCurrent && c.pos == slot {
			movedToSlot++
			winner = c
		}
	}
	if movedToSlot != 1 {
		t.Fatalf("%d greedy picks took the same slot", movedToSlot)
	}
	if winner.cell != 0 {
		t.Errorf("greedy picked cell %d (gain 8) over cell 0 (gain 9)", winner.cell)
	}
}

// TestSelectExpiredDeadlineSkipsSolve: a context already past its deadline
// must not start an ILP solve at all — selection drops straight to greedy.
func TestSelectExpiredDeadlineSkipsSolve(t *testing.T) {
	e := selFixture(t)
	solved := false
	e.Cfg.Hooks.SolveSelection = func(m *ilp.Model, opt ilp.Options) ilp.Solution {
		solved = true
		return m.Solve(opt)
	}
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	alt := findFreeSlotFor(t, e, 0)
	cands := [][]candidate{{
		{cell: 0, pos: e.D.Cells[0].Pos, conflicts: map[int32]geom.Point{}, isCurrent: true, cost: 10},
		{cell: 0, pos: alt, conflicts: map[int32]geom.Point{}, cost: 4},
	}}
	chosen, sol, usedGreedy := e.selectCandidates(ctx, cands)
	if solved {
		t.Error("solver ran despite an expired deadline")
	}
	if !usedGreedy || sol.Status != ilp.LimitReached {
		t.Fatalf("expired deadline: usedGreedy=%v status=%v", usedGreedy, sol.Status)
	}
	if len(chosen) != 1 || chosen[0].pos != alt {
		t.Fatalf("greedy under expired deadline missed the move: %+v", chosen)
	}
}

// findFreeSlotFor locates a free legal slot for the cell somewhere on the
// die (for building synthetic candidates).
func findFreeSlotFor(t *testing.T, e *Engine, id int32) geom.Point {
	t.Helper()
	c := e.D.Cells[id]
	for ri := range e.D.Rows {
		for _, x := range e.D.FreeSitesIn(int32(ri), e.D.Die.Lo.X, e.D.Die.Hi.X, c.Macro.Width, map[int32]bool{id: true}) {
			p := geom.Pt(x, e.D.Rows[ri].Y)
			if p != c.Pos && e.D.CheckLegal(c, p) == nil {
				return p
			}
		}
	}
	t.Fatal("no free slot found")
	return geom.Point{}
}
