package crp

import (
	"context"
	"reflect"
	"testing"

	"github.com/crp-eda/crp/internal/db"
	"github.com/crp-eda/crp/internal/geom"
	"github.com/crp-eda/crp/internal/grid"
	"github.com/crp-eda/crp/internal/ispd"
	"github.com/crp-eda/crp/internal/route/global"
)

// runOutcome is everything a CR&P run decides: per-iteration stats (minus
// wall-clock times), final placement, and final committed routing cost.
type runOutcome struct {
	iters     []IterStats
	positions []geom.Point
	totalCost float64
}

func outcomeOf(t *testing.T, d *db.Design, r *global.Router, res *Result) runOutcome {
	t.Helper()
	o := runOutcome{totalCost: r.TotalCost()}
	for _, it := range res.Iterations {
		it.Times = PhaseTimes{} // wall-clock is the one thing allowed to differ
		o.iters = append(o.iters, it)
	}
	for _, c := range d.Cells {
		o.positions = append(o.positions, c.Pos)
	}
	return o
}

func sameOutcome(a, b runOutcome) bool {
	if a.totalCost != b.totalCost || len(a.iters) != len(b.iters) || len(a.positions) != len(b.positions) {
		return false
	}
	for i := range a.iters {
		// IterStats carries a Degradations slice now, so == no longer
		// applies; DeepEqual also asserts both runs degraded identically
		// (in these fault-free runs: not at all).
		if !reflect.DeepEqual(a.iters[i], b.iters[i]) {
			return false
		}
	}
	for i := range a.positions {
		if a.positions[i] != b.positions[i] {
			return false
		}
	}
	return true
}

// TestDeterminismColdWarmAndUncached is the regression guard for the
// estimation fast path: a run on cold caches, a run whose caches were
// pre-warmed with unrelated queries, and a run with caching disabled
// entirely must all make the same moves and end with identical statistics,
// placements, and routing cost. Cache state may change only speed, never
// results.
func TestDeterminismColdWarmAndUncached(t *testing.T) {
	build := func(disableCache bool) (*db.Design, *grid.Grid, *global.Router) {
		d, err := ispd.Generate(ispd.Spec{
			Name: "crp_det", Node: "n45", Cells: 300, Nets: 250,
			Utilisation: 0.88, Hotspots: 2, IOFraction: 0.03, Seed: 7,
		})
		if err != nil {
			t.Fatal(err)
		}
		g := grid.New(d, grid.DefaultParams())
		rcfg := global.DefaultConfig()
		rcfg.DisableEstimateCache = disableCache
		r := global.New(d, g, rcfg)
		r.RouteAll()
		return d, g, r
	}
	run := func(disableCache, warm bool) runOutcome {
		d, g, r := build(disableCache)
		if warm {
			// Populate the segment/tree caches with every net's current
			// terminals before the engine sees anything.
			for _, n := range d.Nets {
				r.EstimateTerminalCost(d.NetPinPositions(n))
			}
		}
		e := New(d, g, r, smallConfig(3))
		return outcomeOf(t, d, r, e.Run(context.Background()))
	}

	cold := run(false, false)
	warm := run(false, true)
	uncached := run(true, false)

	if !sameOutcome(cold, warm) {
		t.Error("cold-cache and warm-cache runs diverged")
	}
	if !sameOutcome(cold, uncached) {
		t.Error("cached and cache-disabled runs diverged")
	}
	if cold.totalCost == 0 || len(cold.positions) == 0 {
		t.Fatal("degenerate outcome — fixture produced nothing to compare")
	}
}
