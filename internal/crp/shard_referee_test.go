package crp

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"github.com/crp-eda/crp/internal/grid"
	"github.com/crp-eda/crp/internal/ispd"
	"github.com/crp-eda/crp/internal/route/global"
)

// shardedOutcome runs a small full CR&P flow with region sharding set to
// regions (0 = the serial seed path) and captures everything the run
// decided, plus the per-iteration shard statistics. The Shard pointers are
// stripped from the outcome's IterStats so serial and sharded runs compare
// on what they decided, not on the sharded mode's extra telemetry (which
// carries wall-clock region durations and a schedule-dependent concurrency
// peak). Everything else — SolverNodes and SolverStatus included — must
// match bit-exactly.
func shardedOutcome(t *testing.T, idx int, scale float64, iters, workers, regions int, tune func(*Config)) (runOutcome, []*ShardIterStats) {
	t.Helper()
	spec := ispd.Suite(scale)[idx]
	d, err := ispd.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	g := grid.New(d, grid.DefaultParams())
	r := global.New(d, g, global.DefaultConfig())
	r.RouteAll()
	cfg := DefaultConfig()
	cfg.Iterations = iters
	cfg.Workers = workers
	cfg.ShardRegions = regions
	if tune != nil {
		tune(&cfg)
	}
	e := New(d, g, r, cfg)
	o := outcomeOf(t, d, r, e.Run(context.Background()))
	shards := make([]*ShardIterStats, len(o.iters))
	for i := range o.iters {
		shards[i] = o.iters[i].Shard
		o.iters[i].Shard = nil
	}
	return o, shards
}

// TestShardedMatchesSerial is the parity referee of the sharding tentpole:
// on three testcases and every worker count, a region-sharded run must make
// exactly the moves of the serial seed path — identical per-iteration
// statistics, placements, and final routing cost. The test is also guarded
// against vacuity: across the matrix, at least one iteration must have
// actually split into two or more regions with no serial redo, otherwise
// the parity holds trivially because everything fell back to one region.
func TestShardedMatchesSerial(t *testing.T) {
	// A note on the tuned cases: the partition merges every pair of critical
	// cells whose legalizer windows overlap, so a dense critical set (the
	// default gamma labels 60% of all cells) percolates into one region on
	// these laptop-scale dice. crp_test1 is kept at the defaults to pin the
	// single-region path; the other two cases use a sparse critical set and
	// compact windows so the partition genuinely splits — the configuration
	// is identical between the serial and sharded runs of each pair, which
	// is all parity requires.
	sparse := func(cfg *Config) {
		cfg.Gamma = 0.03
		cfg.Legal.NSites = 8
		cfg.Legal.NRows = 3
	}
	sparser := func(cfg *Config) {
		sparse(cfg)
		cfg.Gamma = 0.02
	}
	cases := []struct {
		idx   int
		scale float64
		iters int
		tune  func(*Config)
	}{
		{0, 0.02, 3, nil},      // crp_test1: defaults, single-region path
		{1, 0.02, 3, sparse},   // crp_test2: ~4 regions
		{6, 0.004, 2, sparser}, // crp_test7 (the Fig. 3 circuit): ~5 regions
	}
	sawParallelRegions := false
	for _, tc := range cases {
		serial, _ := shardedOutcome(t, tc.idx, tc.scale, tc.iters, 4, 0, tc.tune)
		if serial.totalCost == 0 || len(serial.positions) == 0 {
			t.Fatalf("testcase %d: degenerate serial outcome", tc.idx+1)
		}
		for _, w := range []int{1, 2, 4, 8} {
			sharded, shards := shardedOutcome(t, tc.idx, tc.scale, tc.iters, w, 16, tc.tune)
			if !sameOutcome(serial, sharded) {
				t.Errorf("testcase %d, %d workers: sharded run diverged from serial (serial cost %v, sharded cost %v)",
					tc.idx+1, w, serial.totalCost, sharded.totalCost)
			}
			for _, s := range shards {
				if s == nil {
					t.Fatalf("testcase %d, %d workers: sharded iteration missing shard stats", tc.idx+1, w)
				}
				if s.Regions >= 2 && s.SerialRedo == 0 {
					sawParallelRegions = true
				}
			}
		}
	}
	if !sawParallelRegions {
		t.Error("vacuous parity: no iteration in the whole matrix split into >=2 regions without a serial redo")
	}
}

// TestShardedRegionsRunConcurrently proves two regions of one iteration
// were genuinely in flight at the same time, deterministically even on a
// single-CPU host: the ShardRegion hook blocks the first region that enters
// until a second one arrives, so the run can only proceed (within the
// timeout) by actually overlapping region pipelines. The recorded
// concurrency peak must then be >= 2.
func TestShardedRegionsRunConcurrently(t *testing.T) {
	spec := ispd.Suite(0.02)[1]
	d, err := ispd.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	g := grid.New(d, grid.DefaultParams())
	r := global.New(d, g, global.DefaultConfig())
	r.RouteAll()
	cfg := DefaultConfig()
	cfg.Iterations = 1
	cfg.Workers = 4
	cfg.ShardRegions = 16
	cfg.Gamma = 0.03
	cfg.Legal.NSites = 8
	cfg.Legal.NRows = 3
	var entered int32
	gate := make(chan struct{})
	cfg.Hooks.ShardRegion = func(iter, region int) {
		if atomic.AddInt32(&entered, 1) == 2 {
			close(gate)
		}
		select {
		case <-gate:
		case <-time.After(5 * time.Second):
			// Give up rather than deadlock; the assertions below will say
			// what went wrong (not enough regions, or no overlap).
		}
	}
	e := New(d, g, r, cfg)
	res := e.Run(context.Background())
	if len(res.Iterations) == 0 {
		t.Fatal("no iterations ran")
	}
	s := res.Iterations[0].Shard
	if s == nil {
		t.Fatal("sharded run recorded no shard stats")
	}
	if s.Regions < 2 {
		t.Fatalf("partition produced %d region(s); the concurrency gate needs >= 2", s.Regions)
	}
	if s.ConcurrentPeak < 2 {
		t.Errorf("concurrency peak %d; two regions never overlapped despite the gate", s.ConcurrentPeak)
	}
}
