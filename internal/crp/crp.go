// Package crp implements the paper's primary contribution: the Co-operation
// between Routing and Placement framework (Section IV). One CR&P iteration
// runs five phases over a placed-and-globally-routed design:
//
//  1. Label Critical Cells (Algorithm 1): cells are sorted by the routed
//     cost of their nets; a connectivity-disjoint subset is selected with a
//     simulated-annealing-style re-selection probability for cells touched
//     in earlier iterations (hist_c, hist_m), capped at γ·|C|.
//  2. Generate Candidate Positions (Algorithm 2): each critical cell keeps
//     its current position and receives extra legal positions from the
//     ILP-based legalizer, each paired with the conflict-cell relocations
//     that make it legal.
//  3. Candidate Cost Estimation (Algorithm 3): every candidate is priced by
//     the fast 3D pattern router over the nets of every cell the candidate
//     moves, with all other cells fixed.
//  4. Selection ILP (Eq. 12): exactly one candidate per critical cell,
//     pairwise exclusion between candidates whose moved footprints or moved
//     cells collide, minimising total estimated routing cost.
//  5. Update Database: selected moves are committed, their nets are ripped
//     up and rerouted, and the history sets are updated.
//
// Phases 2 and 3 run on a worker pool, matching the paper's "run parallel"
// annotations; phase timings are recorded per iteration so the Fig. 3
// runtime breakdown can be regenerated.
package crp

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/crp-eda/crp/internal/db"
	"github.com/crp-eda/crp/internal/geom"
	"github.com/crp-eda/crp/internal/grid"
	"github.com/crp-eda/crp/internal/ilp"
	"github.com/crp-eda/crp/internal/legal"
	"github.com/crp-eda/crp/internal/route/global"
	"github.com/crp-eda/crp/internal/steiner"
	"github.com/crp-eda/crp/internal/view"
)

// CostMode selects the candidate cost model; LengthOnly is the ablation
// that reproduces the state-of-the-art baseline's congestion-blind cost
// (one of the two differences the paper credits for beating [18]).
type CostMode uint8

const (
	// CongestionAware prices candidates with Eq. 10 (the paper's model).
	CongestionAware CostMode = iota
	// LengthOnly prices candidates by Steiner length alone.
	LengthOnly
)

// Hooks are optional seams for fault injection and testing. All fields may
// be nil (the default), in which case the engine's behaviour is exactly the
// un-hooked fast path. GCP/ECC hooks run inside worker goroutines and may
// panic — the worker pool quarantines the offending work item instead of
// crashing the run.
type Hooks struct {
	// GCP fires before candidate generation of critical cell index i.
	GCP func(iter, i int)
	// ECC fires before cost estimation of candidate group i.
	ECC func(iter, i int)
	// PostUD fires after the update-database phase, before the iteration's
	// invariant check — the seam the chaos suite uses to prove rollback.
	PostUD func(iter int)
	// ShardRegion fires at the start of region pipeline `region` (ordinal
	// within the iteration's partition) of a sharded iteration, inside the
	// region's worker goroutine. A panic here quarantines the region, which
	// the engine then redoes on the serial path — the seam the sharded
	// chaos tests use for worker-panic and budget-expiry faults.
	ShardRegion func(iter, region int)
	// SolveSelection replaces the selection-ILP solve (Eq. 12) entirely;
	// tests use it to force LimitReached/Infeasible outcomes.
	SolveSelection func(m *ilp.Model, opt ilp.Options) ilp.Solution
	// ILPOptions rewrites the selection solve options (fault injection:
	// budget starvation).
	ILPOptions func(opt ilp.Options) ilp.Options
}

// Degradation records one fault-tolerance event: a fallback taken, a
// quarantined worker, a missed deadline, or a rolled-back iteration. A run
// with no faults and no expired budgets reports none.
type Degradation struct {
	Iter   int    // 1-based CR&P iteration (0: outside any iteration)
	Kind   string // stable identifier, e.g. "worker-panic", "selection-fallback"
	Detail string
}

// String implements fmt.Stringer.
func (d Degradation) String() string {
	return fmt.Sprintf("iter %d: %s (%s)", d.Iter, d.Kind, d.Detail)
}

// Config tunes the framework; DefaultConfig returns the paper's values.
type Config struct {
	// Iterations is k, the number of CR&P iterations (paper: 1 and 10).
	Iterations int
	// Gamma caps the critical set at Gamma*|C| (paper: 0.6).
	Gamma float64
	// T is the simulated-annealing temperature of Algorithm 1 (paper: 1).
	T float64
	// Seed drives the selection randomness; runs are reproducible.
	Seed int64
	// Workers sizes the parallel phases; 0 means GOMAXPROCS.
	Workers int
	// Legal configures the ILP-based legalizer window.
	Legal legal.Config
	// CostMode selects the candidate cost model (ablation hook).
	CostMode CostMode
	// NoPriority disables the cost sort of Algorithm 1 (ablation hook:
	// [18] moves cells with no priority).
	NoPriority bool
	// IterTimeout is the per-iteration deadline (0: none). An iteration
	// that runs out of time completes its committed work and stops before
	// the next uncommitted phase; it never leaves a half-applied state.
	IterTimeout time.Duration
	// ILPTimeLimit caps each selection-ILP solve (0: none). On expiry the
	// greedy improving selection takes over (degradation ladder).
	ILPTimeLimit time.Duration
	// SelectMaxNodes caps the selection ILP's branch & bound nodes;
	// 0 means the historical default of 200k nodes.
	SelectMaxNodes int
	// DisableSolverFastPath routes every ILP in the iteration — the
	// legalizer's relocation models and the selection model — through the
	// legacy dense-tableau solver and disables the legalizer's result
	// caches; the differential-testing escape hatch.
	DisableSolverFastPath bool
	// ShardRegions enables the region-sharded iteration mode when > 0: the
	// critical set is partitioned into up to roughly this many spatial
	// regions whose legalizer windows cannot interact, each region's
	// generate→estimate→select pipeline runs concurrently on the worker
	// pool, and the results are merged speculatively through the iteration
	// transaction with journal-based conflict detection (serial replay on
	// conflict). 0 (the default) keeps the seed serial iteration verbatim.
	// Selections are bit-identical to the serial mode by construction; see
	// DESIGN.md, "Sharding architecture".
	ShardRegions int
	// ShardHalo inflates every region's interaction rectangle and merge
	// footprint by this many GCells (<=0: default 2), so routing-demand
	// interactions just outside a window or net bounding box are captured.
	ShardHalo int
	// ShardRegionBudget caps each region pipeline's wall clock (0: none).
	// A region that exceeds it is discarded and redone on the serial path,
	// recorded as a "shard-region-budget" degradation.
	ShardRegionBudget time.Duration
	// Scope, when non-nil, restricts Algorithm 1's candidate pool: only
	// cells the predicate admits may be labelled critical. The ECO engine
	// points it at the dirty-region tracker so re-labeling stays local to
	// the edit — out-of-scope cells are never considered, consume no RNG
	// draws, and their history sets are untouched. nil (the default)
	// considers every movable cell, the full-run behaviour.
	Scope func(id int32) bool
	// Hooks are fault-injection/testing seams; zero value = none.
	Hooks Hooks
}

// DefaultConfig returns the paper's experimental parameters.
func DefaultConfig() Config {
	return Config{
		Iterations: 10,
		Gamma:      0.6,
		T:          1.0,
		Seed:       1,
		Legal:      legal.DefaultConfig(),
	}
}

// PhaseTimes is the per-iteration runtime breakdown reported in Fig. 3:
// GCP (generate candidate positions), ECC (estimate candidates cost), UD
// (update database), and Misc (labeling plus the selection ILP).
type PhaseTimes struct {
	Label time.Duration // critical-cell labeling (Misc)
	GCP   time.Duration
	ECC   time.Duration
	ILP   time.Duration // selection ILP (Misc)
	UD    time.Duration

	// GCPGen / GCPILP split the GCP phase into pure candidate-generation
	// work and relocation-ILP solving. Both are summed across concurrent
	// workers (CPU-time-like), so they need not add up to the wall-clock
	// GCP above.
	GCPGen time.Duration
	GCPILP time.Duration
}

// Misc returns the paper's Misc bucket (everything but GCP/ECC/UD).
func (p PhaseTimes) Misc() time.Duration { return p.Label + p.ILP }

// Total returns the summed phase time.
func (p PhaseTimes) Total() time.Duration { return p.Label + p.GCP + p.ECC + p.ILP + p.UD }

// IterStats records what one iteration did.
type IterStats struct {
	Criticals    int
	Candidates   int
	MovedCells   int // critical + conflict cells that changed position
	ReroutedNets int
	EstBefore    float64 // selected candidates' estimated cost at current positions
	EstAfter     float64 // selected candidates' estimated cost
	Times        PhaseTimes
	SolverNodes  int
	SolverStatus ilp.Status
	SkippedMoves int // selected moves that failed to apply (defensive)

	// Robustness outcomes (all zero on a fault-free iteration).
	Quarantined    int  // worker panics contained this iteration
	GreedyFallback bool // selection ILP fell back to the greedy selection
	RolledBack     bool // invariant violation undid the whole iteration
	DeadlineHit    bool // the iteration deadline expired mid-iteration
	// Degradations details every robustness event of this iteration.
	Degradations []Degradation

	// Shard reports the region-sharded pipeline's behaviour; nil unless the
	// iteration ran in sharded mode (Config.ShardRegions > 0). Differential
	// referees zero it (alongside SolverNodes) before comparing against a
	// serial run — everything else in IterStats must match exactly.
	Shard *ShardIterStats
}

// ShardIterStats records what one sharded iteration's region pipelines and
// speculative merge did.
type ShardIterStats struct {
	// Regions is the number of regions the partition produced.
	Regions int
	// RegionCells and RegionDurations hold, per region ordinal, the member
	// count and the region pipeline's wall clock (generate + estimate +
	// select). cmd/benchreport feeds the durations to shard.Makespan to
	// model the parallel wall clock at a given worker count.
	RegionCells     []int
	RegionDurations []time.Duration
	// ConcurrentPeak is the maximum number of region pipelines observed in
	// flight at once (>= 2 proves the concurrency was not vacuous).
	ConcurrentPeak int
	// SerialRedo counts regions whose pipeline was discarded (panic or
	// budget expiry) and redone on the serial path.
	SerialRedo int
	// SelectFallback is set when the per-region selections could not be
	// merged (a region solve was not optimal, or a region was redone) and
	// the global serial selection ILP ran instead.
	SelectFallback bool
	// MergeConflicts counts cross-region demand-edge conflicts the journal
	// intersection test detected; MazeReroutes counts reroutes that fell
	// back to the maze router (whose unbounded read set always forces the
	// serial merge). MergeSerialized is set when the update-database phase
	// ran (or re-ran) in the exact serial order instead of region-major.
	MergeConflicts  int
	MazeReroutes    int
	MergeSerialized bool
}

// Result aggregates a full CR&P run.
type Result struct {
	Iterations []IterStats
	TotalMoved int
	// CandidateEstimates counts Algorithm 3 candidate pricings performed by
	// this engine — the work metric the ECO differential referee compares
	// against a from-scratch run (ECO must price ≥10× fewer candidates on
	// small deltas). Engine-lifetime, so a resumed engine counts only its
	// own process's work.
	CandidateEstimates int64
	// Degradations aggregates every iteration's fault-tolerance events;
	// empty on a clean run.
	Degradations []Degradation
}

// Degraded reports whether any fault-tolerance event fired during the run.
func (r *Result) Degraded() bool { return len(r.Degradations) > 0 }

// Times sums the phase breakdown over all iterations.
func (r *Result) Times() PhaseTimes {
	var t PhaseTimes
	for _, it := range r.Iterations {
		t.Label += it.Times.Label
		t.GCP += it.Times.GCP
		t.ECC += it.Times.ECC
		t.ILP += it.Times.ILP
		t.UD += it.Times.UD
		t.GCPGen += it.Times.GCPGen
		t.GCPILP += it.Times.GCPILP
	}
	return t
}

// Engine runs CR&P over a design with a committed global routing.
type Engine struct {
	D   *db.Design
	G   *grid.Grid
	R   *global.Router
	L   *legal.Legalizer
	Cfg Config
	// V is the design-state view the engine reads through and mutates
	// under: ECC prices candidates on per-worker overlays, and the
	// update-database phase runs inside a view transaction.
	V   *view.View
	rng *rand.Rand
	// src is the counted source behind rng: it tallies every value drawn so
	// a checkpoint can record the stream position and a resumed engine can
	// fast-forward to it (see State/RestoreState).
	src *countedSource

	// ovs holds one speculation overlay per worker slot; parallelFor hands
	// every worker a stable index, so phase-3 costing runs allocation-lean
	// without locking.
	ovs []*view.Overlay
	// scratch holds one legalizer scratch per worker slot for the phase-2
	// candidate-generation fan-out.
	scratch []*legal.Scratch

	// iter is the 1-based running iteration counter (fills Degradation.Iter).
	iter int
	// resWire/resVia are the grid demand residuals not explained by
	// committed routes (obstacle/pin seeding), captured at construction;
	// the transactional invariant check asserts they never drift.
	resWire float64
	resVia  float64
	// broken latches an unrecoverable invariant violation (rollback did
	// not restore consistency); Run stops iterating once set.
	broken bool

	// estimates counts Algorithm 3 candidate pricings over the engine's
	// lifetime; atomic because pricing runs under parallelFor workers and
	// the sharded region pipelines.
	estimates atomic.Int64
}

// EstimateCount returns the number of candidate cost estimations the engine
// has performed — the ECO work metric surfaced in Result.CandidateEstimates.
func (e *Engine) EstimateCount() int64 { return e.estimates.Load() }

// New builds an engine. The router must already hold the initial global
// routing (the framework sits between global and detailed routing, Fig. 1).
func New(d *db.Design, g *grid.Grid, r *global.Router, cfg Config) *Engine {
	if cfg.Iterations <= 0 {
		cfg.Iterations = 1
	}
	if cfg.Gamma <= 0 {
		cfg.Gamma = DefaultConfig().Gamma
	}
	if cfg.T <= 0 {
		cfg.T = 1
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.SelectMaxNodes <= 0 {
		cfg.SelectMaxNodes = 200_000
	}
	if cfg.DisableSolverFastPath {
		cfg.Legal.DisableSolverFastPath = true
	}
	v := view.New(d, g, r)
	ovs := make([]*view.Overlay, cfg.Workers)
	scratch := make([]*legal.Scratch, cfg.Workers)
	for i := range ovs {
		ovs[i] = v.Overlay()
		scratch[i] = legal.NewScratch()
	}
	src := newCountedSource(cfg.Seed)
	e := &Engine{
		D:       d,
		G:       g,
		R:       r,
		L:       legal.New(d, cfg.Legal),
		Cfg:     cfg,
		V:       v,
		rng:     rand.New(src),
		src:     src,
		ovs:     ovs,
		scratch: scratch,
	}
	sumW, sumV := e.routeDemand()
	e.resWire = g.TotalWireUsage() - sumW
	e.resVia = g.TotalViaCount() - sumV
	return e
}

// Run executes Cfg.Iterations CR&P iterations under the context: ctx
// cancellation (or a deadline) stops the loop between iterations, and
// Cfg.IterTimeout bounds each individual iteration. The design is always
// left in a consistent, legal state.
func (e *Engine) Run(ctx context.Context) *Result {
	res := &Result{}
	for k := 0; k < e.Cfg.Iterations; k++ {
		if err := ctx.Err(); err != nil {
			res.Degradations = append(res.Degradations,
				Degradation{Iter: e.iter + 1, Kind: "run-cancelled", Detail: err.Error()})
			break
		}
		st := e.Iterate(ctx)
		res.Iterations = append(res.Iterations, st)
		res.TotalMoved += st.MovedCells
		res.Degradations = append(res.Degradations, st.Degradations...)
		if e.broken {
			break
		}
	}
	res.CandidateEstimates = e.EstimateCount()
	return res
}

// RunUntilConverged iterates until an iteration moves fewer than minMoves
// cells (or maxIters is reached) — the "continued to satisfy expected
// requirements" stopping rule the paper sketches for its iterative flow.
// minMoves of 1 stops at full convergence (an iteration with no moves).
func (e *Engine) RunUntilConverged(ctx context.Context, maxIters, minMoves int) *Result {
	if maxIters <= 0 {
		maxIters = e.Cfg.Iterations
	}
	if minMoves <= 0 {
		minMoves = 1
	}
	res := &Result{}
	for k := 0; k < maxIters; k++ {
		if err := ctx.Err(); err != nil {
			res.Degradations = append(res.Degradations,
				Degradation{Iter: e.iter + 1, Kind: "run-cancelled", Detail: err.Error()})
			break
		}
		st := e.Iterate(ctx)
		res.Iterations = append(res.Iterations, st)
		res.TotalMoved += st.MovedCells
		res.Degradations = append(res.Degradations, st.Degradations...)
		if e.broken || st.MovedCells < minMoves {
			break
		}
	}
	res.CandidateEstimates = e.EstimateCount()
	return res
}

// routeDemand sums the grid demand explained by the router's committed
// routes: wire usage on layers >= 1 (layer 0 has no capacity and is excluded
// from TotalWireUsage) and all via edges. The difference between the grid
// totals and these sums is the construction-time residual (pin/obstacle
// seeding) that checkInvariants asserts never drifts.
func (e *Engine) routeDemand() (wires, vias float64) {
	for _, rt := range e.R.Routes {
		if rt == nil {
			continue
		}
		for _, w := range rt.Wires {
			if w.L >= 1 {
				wires++
			}
		}
		vias += float64(len(rt.Vias))
	}
	return wires, vias
}

// cellCost is the Algorithm 1 sort key: the summed live cost of the cell's
// routed nets.
func (e *Engine) cellCost(id int32) float64 {
	cost := 0.0
	for _, nid := range e.D.Cells[id].Nets {
		cost += e.V.NetCost(nid)
	}
	return cost
}

// labelCriticalCells is Algorithm 1.
func (e *Engine) labelCriticalCells() []int32 {
	d := e.D
	type scored struct {
		id   int32
		cost float64
	}
	cells := make([]scored, 0, len(d.Cells))
	for _, c := range d.Cells {
		if c.Fixed {
			continue
		}
		// The ECO scope filter runs before the sort and the damping draws:
		// an out-of-scope cell affects neither the RNG stream consumed by
		// in-scope labeling nor any history set.
		if e.Cfg.Scope != nil && !e.Cfg.Scope(c.ID) {
			continue
		}
		cells = append(cells, scored{c.ID, e.cellCost(c.ID)})
	}
	if !e.Cfg.NoPriority {
		sort.Slice(cells, func(a, b int) bool {
			if cells[a].cost != cells[b].cost {
				return cells[a].cost > cells[b].cost
			}
			return cells[a].id < cells[b].id
		})
	}
	limit := int(e.Cfg.Gamma * float64(len(cells)))
	inSet := make(map[int32]bool, limit)
	var critical []int32
	for _, s := range cells {
		// The γ·|C| cap is checked before inserting so the set can never
		// exceed it (it used to run after the append, letting the set
		// reach limit+1).
		if len(critical) >= limit {
			break
		}
		// (1) no connected cell may already be critical: moving two
		// connected cells at once would invalidate Algorithm 3's
		// one-moving-cell-per-net assumption.
		conflict := false
		for _, nb := range d.ConnectedCells(s.id) {
			if inSet[nb] {
				conflict = true
				break
			}
		}
		if conflict {
			continue
		}
		// (2)+(3) history damping: previously-labelled cells re-enter
		// with probability exp(-1/T), previously-moved with exp(-2/T) —
		// the simulated-annealing form, T scaling the exponent (at T=1:
		// ≈36% and ≈13%).
		hist := 0.0
		if d.WasCritical(s.id) {
			hist++
		}
		if d.WasMoved(s.id) {
			hist++
		}
		accept := math.Exp(-hist / e.Cfg.T)
		if accept > e.rng.Float64() {
			inSet[s.id] = true
			critical = append(critical, s.id)
		}
	}
	return critical
}

// candidate is one placement option of a critical cell, Algorithm 2's
// output unit: the target plus any conflict relocations, priced by
// Algorithm 3.
type candidate struct {
	cell      int32
	pos       geom.Point
	conflicts map[int32]geom.Point
	cost      float64
	isCurrent bool
}

// movedCells lists every cell the candidate repositions.
func (c *candidate) movedCells() []int32 {
	out := []int32{c.cell}
	for id := range c.conflicts {
		out = append(out, id)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// generateCandidates is Algorithm 2: current position plus legalizer
// output, in parallel over critical cells. A worker panic (or a cancelled
// context) leaves that cell with only its stay-put candidate, so the
// selection phase can never pick half-generated work.
func (e *Engine) generateCandidates(ctx context.Context, critical []int32) ([][]candidate, []quarantined) {
	out := make([][]candidate, len(critical))
	quar := e.parallelFor(ctx, len(critical), func(w, i int) {
		out[i] = e.generateOne(w, i, critical[i])
	})
	// Cells skipped by cancellation or quarantined by a panic keep exactly
	// their current position.
	for i := range out {
		if out[i] == nil {
			out[i] = e.stayPutOnly(critical[i])
		}
	}
	return out, quar
}

// generateOne builds critical cell i's candidate list — the current
// position plus the legalizer's output — on worker w's scratch. It is the
// per-item body of the generation fan-out, shared verbatim by the serial
// mode's parallelFor and the sharded mode's region pipelines.
func (e *Engine) generateOne(w, i int, cid int32) []candidate {
	if h := e.Cfg.Hooks.GCP; h != nil {
		h(e.iter, i)
	}
	cur := e.V.Pos(cid)
	cands := []candidate{{cell: cid, pos: cur, conflicts: map[int32]geom.Point{}, isCurrent: true}}
	for _, lc := range e.L.RunScratch(cid, e.scratch[w]) {
		cands = append(cands, candidate{cell: cid, pos: lc.Pos, conflicts: lc.Conflicts})
	}
	return cands
}

// stayPutOnly is the quarantine fallback candidate list: exactly the
// cell's current position.
func (e *Engine) stayPutOnly(cid int32) []candidate {
	return []candidate{{cell: cid, pos: e.V.Pos(cid), conflicts: map[int32]geom.Point{}, isCurrent: true}}
}

// estimateCosts is Algorithm 3: each candidate's cost is the summed
// estimated routing cost of every net touching a cell the candidate moves,
// with the candidate's positions applied hypothetically and every other
// cell fixed. Each worker prices on its own view overlay.
//
// Costs are prefilled with +Inf so a group abandoned mid-pricing (panic or
// cancellation) can never look attractive: such groups are reset to "stay
// put is free, every move is infinitely expensive".
func (e *Engine) estimateCosts(ctx context.Context, cands [][]candidate) []quarantined {
	for i := range cands {
		for j := range cands[i] {
			cands[i][j].cost = math.Inf(1)
		}
	}
	done := make([]bool, len(cands))
	quar := e.parallelFor(ctx, len(cands), func(w, i int) {
		e.estimateGroup(e.ovs[w], i, cands[i])
		done[i] = true
	})
	for i := range cands {
		if !done[i] {
			resetGroupCosts(cands[i])
		}
	}
	return quar
}

// estimateGroup prices every candidate of group i on overlay ov — the
// per-item body of the estimation fan-out, shared verbatim by the serial
// mode's parallelFor and the sharded mode's region pipelines.
func (e *Engine) estimateGroup(ov *view.Overlay, i int, group []candidate) {
	if h := e.Cfg.Hooks.ECC; h != nil {
		h(e.iter, i)
	}
	for j := range group {
		group[j].cost = e.estimateCandidate(&group[j], ov)
	}
}

// resetGroupCosts restores a group abandoned mid-pricing to "stay put is
// free, every move is infinitely expensive".
func resetGroupCosts(group []candidate) {
	for j := range group {
		if group[j].isCurrent {
			group[j].cost = 0
		} else {
			group[j].cost = math.Inf(1)
		}
	}
}

func (e *Engine) estimateCandidate(c *candidate, ov *view.Overlay) float64 {
	e.estimates.Add(1)
	// The hypothetical moves: the critical cell first, then the conflict
	// cells in ascending ID order. Fixed order matters — the per-net costs
	// are summed in discovery order, and float addition is not associative,
	// so the staging order is part of the bit-identity contract (the overlay
	// documents the same invariant).
	ov.Reset()
	ov.Stage(c.cell, c.pos)
	ov.StageSorted(c.conflicts)
	// Cost the union of nets over all moved cells, each net once.
	total := 0.0
	for _, nid := range ov.AffectedNets() {
		total += e.estimateNet(nid, ov)
	}
	return total
}

// estimateNet prices one net as seen through the overlay's staged moves.
func (e *Engine) estimateNet(nid int32, ov *view.Overlay) float64 {
	pts := ov.NetTerminals(nid)
	if e.Cfg.CostMode == LengthOnly {
		tree := steiner.Build(pts)
		return float64(tree.Length())
	}
	return e.R.EstimateTerminalCost(pts)
}

// quarantined records a work item whose worker panicked: the pool contains
// the panic, skips the item, and reports it instead of killing the run.
type quarantined struct {
	index int
	msg   string
}

// parallelFor runs fn(worker, i) for i in [0,n) on the worker pool. Work is
// claimed in chunks off an atomic counter instead of being pushed one index
// at a time through an unbuffered channel: claiming costs one uncontended
// atomic add per chunk rather than a channel rendezvous per index, and the
// stable worker index lets callers keep per-worker scratch state.
//
// Robustness contract: a panicking fn quarantines only its own index (the
// rest of the chunk and pool continue), and a cancelled ctx stops workers at
// the next chunk boundary — indices never claimed are simply not run, which
// callers observe through their own completion bookkeeping. All goroutines
// are joined before returning; nothing leaks on cancellation.
func (e *Engine) parallelFor(ctx context.Context, n int, fn func(worker, i int)) []quarantined {
	var quar []quarantined
	var mu sync.Mutex
	call := func(w, i int) {
		defer func() {
			if r := recover(); r != nil {
				mu.Lock()
				quar = append(quar, quarantined{index: i, msg: fmt.Sprint(r)})
				mu.Unlock()
			}
		}()
		fn(w, i)
	}
	workers := min(e.Cfg.Workers, n)
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if ctx.Err() != nil {
				break
			}
			call(0, i)
		}
		return quar
	}
	// ~4 chunks per worker balances claim overhead against tail imbalance
	// from uneven per-index work.
	chunk := max(1, n/(workers*4))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					return
				}
				start := int(next.Add(int64(chunk))) - chunk
				if start >= n {
					return
				}
				for i := start; i < min(start+chunk, n); i++ {
					call(w, i)
				}
			}
		}(w)
	}
	wg.Wait()
	sort.Slice(quar, func(a, b int) bool { return quar[a].index < quar[b].index })
	return quar
}
