package crp

import (
	"context"
	"testing"

	"github.com/crp-eda/crp/internal/grid"
	"github.com/crp-eda/crp/internal/ispd"
	"github.com/crp-eda/crp/internal/route/global"
)

// flowOutcome runs a small full CR&P flow on one of the synthetic ISPD
// testcases and captures everything the run decided.
func flowOutcome(t *testing.T, idx, iters, workers int, dense bool) runOutcome {
	t.Helper()
	spec := ispd.Suite(0.02)[idx]
	d, err := ispd.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	g := grid.New(d, grid.DefaultParams())
	r := global.New(d, g, global.DefaultConfig())
	r.RouteAll()
	cfg := DefaultConfig()
	cfg.Iterations = iters
	cfg.Workers = workers
	cfg.DisableSolverFastPath = dense
	e := New(d, g, r, cfg)
	return outcomeOf(t, d, r, e.Run(context.Background()))
}

// TestFlowFastVsDenseParity is the flow half of the differential-parity
// satellite: full CR&P runs through the sparse fast path (presolve, sparse
// simplex, window + solve caches) and through the legacy dense-tableau path
// must make identical moves and end with identical placements, statistics
// and routing cost on crp_test1 and crp_test2.
//
// Where a relocation ILP has several cost-equal optima the two solvers can
// in principle tie-break differently (the legalizer-level ladder in
// internal/legal/fastpath_test.go verifies such divergences are pure ties);
// on these testcases no tie surfaces in the cells the flow actually
// legalises, so full equality is asserted — if this test ever fails with
// cost-equal positions, extend it with the documented ladder rather than
// loosening blindly.
func TestFlowFastVsDenseParity(t *testing.T) {
	for _, idx := range []int{0, 1} {
		fast := flowOutcome(t, idx, 3, 4, false)
		dense := flowOutcome(t, idx, 3, 4, true)
		if !sameOutcome(fast, dense) {
			t.Errorf("testcase %d: fast and dense flows diverged (fast cost %v, dense cost %v)",
				idx+1, fast.totalCost, dense.totalCost)
		}
		if fast.totalCost == 0 || len(fast.positions) == 0 {
			t.Fatalf("testcase %d: degenerate outcome", idx+1)
		}
	}
}

// TestFlowWorkerCountInvariant: the candidate-generation and costing
// fan-outs merge results by item index, so the worker count must never
// change the outcome — 1 worker and 8 workers are bit-identical.
func TestFlowWorkerCountInvariant(t *testing.T) {
	serial := flowOutcome(t, 0, 3, 1, false)
	wide := flowOutcome(t, 0, 3, 8, false)
	if !sameOutcome(serial, wide) {
		t.Error("worker count changed the run outcome")
	}
}

// TestGCPTimingSplit: the GCP phase records its candidate-generation vs
// relocation-ILP split, and the ILP share can never exceed the legalizer's
// total recorded time.
func TestGCPTimingSplit(t *testing.T) {
	spec := ispd.Suite(0.02)[1]
	d, err := ispd.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	g := grid.New(d, grid.DefaultParams())
	r := global.New(d, g, global.DefaultConfig())
	r.RouteAll()
	cfg := DefaultConfig()
	cfg.Iterations = 2
	cfg.Workers = 2
	e := New(d, g, r, cfg)
	res := e.Run(context.Background())
	times := res.Times()
	if times.GCP <= 0 {
		t.Fatal("no GCP time recorded")
	}
	if times.GCPGen <= 0 {
		t.Error("GCPGen split not recorded")
	}
	if times.GCPILP < 0 {
		t.Errorf("negative GCPILP: %v", times.GCPILP)
	}
	run, solve := e.L.Timing()
	if solve > run {
		t.Errorf("legalizer solve time %v exceeds total run time %v", solve, run)
	}
	if got := times.GCPGen + times.GCPILP; got > run {
		t.Errorf("recorded GCP split %v exceeds legalizer total %v", got, run)
	}
}
