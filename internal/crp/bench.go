package crp

import (
	"context"

	"github.com/crp-eda/crp/internal/db"
	"github.com/crp-eda/crp/internal/grid"
	"github.com/crp-eda/crp/internal/route/global"
)

// ECCWorkload builds the workload of BenchmarkECCEstimateCosts for external
// harnesses (cmd/benchreport): candidates are generated once from the
// critical set, and the returned function re-prices all of them at fixed
// grid demand — phase 3 (Algorithm 3), the Fig. 3 hot spot the estimation
// caches and per-worker overlays target. n is the number of candidates
// priced per call.
func ECCWorkload(d *db.Design, g *grid.Grid, r *global.Router, cfg Config) (run func(), n int) {
	e := New(d, g, r, cfg)
	critical := e.labelCriticalCells()
	cands, _ := e.generateCandidates(context.Background(), critical)
	return func() { e.estimateCosts(context.Background(), cands) }, len(cands)
}
