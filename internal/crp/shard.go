package crp

// Region-sharded speculative iterations (DESIGN.md, "Sharding architecture").
//
// iterateSharded is Iterate with the label phase kept serial (the counted
// RNG stream is part of the checkpoint bit-identity contract) and the
// GCP→ECC→selection pipeline run per region: the critical set is
// partitioned by internal/shard so that no two regions' candidates can
// interact through the selection ILP, each region runs the three phases on
// its own worker with its own overlay and legalizer scratch, and one view
// transaction merges the results with optimistic conflict detection over
// the demand journal. Every divergence hazard has a serial escape hatch, so
// the committed state is bit-identical to the serial Iterate at any worker
// count:
//
//   - a region that panics or overruns its budget is redone serially with
//     the serial mode's exact per-cell quarantine semantics;
//   - per-region ILP solutions are recombined only when the recombination
//     provably equals the global solve (all regions optimal, no greedy
//     fallback, no selection hooks, no time limits, and the summed node
//     count under the shared MaxNodes budget — node counts are pure
//     functions of the component models, so the guard is exact); otherwise
//     the global serial selection runs as-is;
//   - the merge reroutes region-major and verifies, on the O(Δ) journal,
//     that every demand write stayed inside its region's declared GCell
//     footprint; any maze fallback or footprint escape discards the
//     transaction and replays the whole update serially.

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"github.com/crp-eda/crp/internal/geom"
	"github.com/crp-eda/crp/internal/ilp"
	"github.com/crp-eda/crp/internal/shard"
	"github.com/crp-eda/crp/internal/view"
)

// regionRun is one region's speculative pipeline result.
type regionRun struct {
	sub        [][]candidate // rows alias the global candidate table
	chosen     []*candidate
	sol        ilp.Solution
	usedGreedy bool

	gcp, ecc, ilpT, total time.Duration
	timedOut              bool
	done                  bool
}

// iterateSharded is the sharded twin of Iterate; see the file comment.
func (e *Engine) iterateSharded(ctx context.Context) IterStats {
	e.iter++
	epoch0 := e.V.Version()
	var st IterStats
	ss := &ShardIterStats{}
	st.Shard = ss
	deg := func(kind, detail string) {
		st.Degradations = append(st.Degradations, Degradation{Iter: e.iter, Kind: kind, Detail: detail})
	}
	if e.Cfg.IterTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, e.Cfg.IterTimeout)
		defer cancel()
	}

	// Labeling: serial and global, exactly the serial path — it consumes the
	// engine RNG, whose counted stream checkpoints depend on.
	t0 := time.Now()
	critical := e.labelCriticalCells()
	st.Times.Label = time.Since(t0)
	st.Criticals = len(critical)
	for _, id := range critical {
		e.D.MarkCritical(id)
	}
	if len(critical) == 0 {
		return st
	}

	ls0 := e.L.Stats()
	run0, solve0 := e.L.Timing()
	e.L.BeginPass()

	// Partition over the legalizer windows: every candidate slot and every
	// conflict relocation of cell i lies inside rects[i], so disjoint
	// (halo-inflated) rects imply disjoint selection sub-problems.
	regions := e.partitionCritical(critical)
	ss.Regions = len(regions)
	ss.RegionCells = make([]int, len(regions))
	ss.RegionDurations = make([]time.Duration, len(regions))
	for ri, reg := range regions {
		ss.RegionCells[ri] = len(reg.Members)
	}

	// Speculative region pipelines: each region is one work item of the
	// worker pool, running GCP, ECC and its selection solve back to back on
	// its worker's scratch and overlay.
	cands := make([][]candidate, len(critical))
	runs := make([]regionRun, len(regions))
	var inflight, peak int32
	quar := e.parallelFor(ctx, len(regions), func(w, ri int) {
		cur := atomic.AddInt32(&inflight, 1)
		defer atomic.AddInt32(&inflight, -1)
		for {
			p := atomic.LoadInt32(&peak)
			if cur <= p || atomic.CompareAndSwapInt32(&peak, p, cur) {
				break
			}
		}
		e.runRegion(ctx, w, ri, regions[ri], critical, cands, &runs[ri])
	})
	ss.ConcurrentPeak = int(peak)

	st.Times.GCPILP, st.Times.GCPGen = 0, 0
	run1, solve1 := e.L.Timing()
	st.Times.GCPILP = solve1 - solve0
	st.Times.GCPGen = (run1 - run0) - st.Times.GCPILP

	// Deadline gate, as in the serial path: nothing before this point
	// mutated committed state, so abandoning the iteration is free.
	if err := ctx.Err(); err != nil {
		st.DeadlineHit = true
		deg("iteration-deadline", "stopped before selection: "+err.Error())
		return st
	}

	// Regions that panicked or overran their budget are redone serially on
	// this goroutine, with the serial mode's per-cell quarantine semantics.
	failed := make(map[int]string, len(quar))
	for _, q := range quar {
		failed[q.index] = q.msg
	}
	for ri := range runs {
		switch {
		case runs[ri].done:
		case runs[ri].timedOut:
			deg("shard-region-budget", fmt.Sprintf("region #%d exceeded its %v budget; redone serially", ri, e.Cfg.ShardRegionBudget))
			e.redoRegion(ctx, ri, regions[ri], critical, cands, &runs[ri], &st)
		default:
			msg := failed[ri]
			if msg == "" {
				msg = "region runner did not complete"
			}
			deg("shard-region-panic", fmt.Sprintf("region #%d quarantined (%s); redone serially", ri, msg))
			e.redoRegion(ctx, ri, regions[ri], critical, cands, &runs[ri], &st)
		}
	}

	// Serial-path bookkeeping over the now-complete candidate table.
	ls1 := e.L.Stats()
	if n := ls1.IncumbentKept - ls0.IncumbentKept; n > 0 {
		deg("legal-incumbent", fmt.Sprintf("%d legalizer ILPs hit their budget; kept best incumbent", n))
	}
	if n := ls1.BudgetDropped - ls0.BudgetDropped; n > 0 {
		deg("legal-dropped", fmt.Sprintf("%d legalizer ILPs hit their budget with no incumbent; candidates dropped", n))
	}
	for _, cs := range cands {
		st.Candidates += len(cs)
	}
	for ri := range runs {
		st.Times.GCP += runs[ri].gcp
		st.Times.ECC += runs[ri].ecc
		st.Times.ILP += runs[ri].ilpT
		ss.RegionDurations[ri] = runs[ri].total
	}

	// Selection merge: recombine the per-region solves when that is provably
	// the global solution; otherwise run the global serial selection.
	chosen, sol, usedGreedy := e.mergeSelections(ctx, cands, runs, ss)
	st.SolverNodes = sol.Nodes
	st.SolverStatus = sol.Status
	if usedGreedy {
		st.GreedyFallback = true
		deg("selection-fallback", fmt.Sprintf("selection ILP %v; greedy improving selection took over", sol.Status))
	}

	curCost := make(map[int32]float64, len(cands))
	for i := range cands {
		for j := range cands[i] {
			if cands[i][j].isCurrent {
				curCost[cands[i][j].cell] = cands[i][j].cost
			}
		}
	}

	// Update database: speculative region-major merge through one
	// transaction, falling back to a serial replay on any conflict.
	t0 = time.Now()
	txn, moved := e.mergeUpdate(epoch0, chosen, curCost, regions, critical, &st, ss)
	if h := e.Cfg.Hooks.PostUD; h != nil {
		h(e.iter)
	}
	if err := txn.Check(); err != nil {
		txn.Discard()
		st.RolledBack = true
		st.MovedCells, st.ReroutedNets, st.SkippedMoves = 0, 0, 0
		st.EstBefore, st.EstAfter = 0, 0
		deg("iteration-rollback", err.Error())
		if err2 := e.checkInvariants(); err2 != nil {
			e.broken = true
			deg("invariant-unrecoverable", err2.Error())
		}
	} else {
		txn.Commit()
		for _, id := range moved {
			e.D.MarkMoved(id)
		}
	}
	st.Times.UD = time.Since(t0)
	if ctx.Err() != nil {
		st.DeadlineHit = true
		deg("iteration-deadline", "deadline expired during update-database (completed transactionally)")
	}
	return st
}

// partitionCritical builds the region set for one iteration's critical
// cells from their legalizer windows.
// The partition needs no halo: WindowRect already pads each window by the
// widest macro, so two non-overlapping rects cannot share a site or a moved
// cell — which is all selection disjointness requires. Routing-demand
// interactions are the merge's business (ShardHalo inflates the merge
// footprints, not the partition).
func (e *Engine) partitionCritical(critical []int32) []shard.Region {
	rects := make([]geom.Rect, len(critical))
	for i, cid := range critical {
		rects[i] = e.L.WindowRect(cid)
	}
	return shard.Partition(shard.Input{
		Die:     e.D.Die,
		Targets: e.Cfg.ShardRegions,
		Rects:   rects,
	})
}

// defaultShardHalo is the footprint/partition margin in GCells when
// Config.ShardHalo is unset: one GCell covers the pattern router's
// bbox+1 read window, the second absorbs pin-to-GCell rounding.
const defaultShardHalo = 2

// runRegion is one region's speculative pipeline: GCP and ECC per member
// cell, then the region's selection solve, all on worker w's scratch. The
// budget is checked at cell boundaries; overrun abandons the region for the
// serial redo. A panic anywhere quarantines the whole region (parallelFor
// catches it), likewise redone serially.
func (e *Engine) runRegion(ctx context.Context, w, ri int, reg shard.Region, critical []int32, cands [][]candidate, run *regionRun) {
	start := time.Now()
	budget := e.Cfg.ShardRegionBudget
	over := func() bool { return budget > 0 && time.Since(start) > budget }

	// The hook fires inside the budget clock so injected region slowdowns
	// count against ShardRegionBudget; a panic here propagates to the worker
	// pool's recover and quarantines exactly this region.
	if h := e.Cfg.Hooks.ShardRegion; h != nil {
		h(e.iter, ri)
	}

	t0 := time.Now()
	for _, mi := range reg.Members {
		if over() {
			run.timedOut = true
			return
		}
		cands[mi] = e.generateOne(w, mi, critical[mi])
	}
	run.gcp = time.Since(t0)

	t0 = time.Now()
	ov := e.ovs[w]
	sub := make([][]candidate, len(reg.Members))
	for k, mi := range reg.Members {
		if over() {
			run.timedOut = true
			return
		}
		e.estimateGroup(ov, mi, cands[mi])
		sub[k] = cands[mi]
	}
	run.ecc = time.Since(t0)

	if over() {
		run.timedOut = true
		return
	}
	t0 = time.Now()
	run.sub = sub
	run.chosen, run.sol, run.usedGreedy = e.selectCandidates(ctx, sub)
	run.ilpT = time.Since(t0)
	run.total = time.Since(start)
	run.done = true
}

// redoRegion reruns a failed region serially on the calling goroutine,
// reproducing the serial mode's per-cell quarantine semantics: a cell whose
// generation panics keeps exactly its current position, a group whose
// pricing panics prices "stay put free, every move infinite" — each with
// the serial path's worker-panic degradation. The redo is complete: partial
// results from the failed attempt are overwritten.
func (e *Engine) redoRegion(ctx context.Context, ri int, reg shard.Region, critical []int32, cands [][]candidate, run *regionRun, st *IterStats) {
	start := time.Now()
	deg := func(kind, detail string) {
		st.Degradations = append(st.Degradations, Degradation{Iter: e.iter, Kind: kind, Detail: detail})
	}
	sub := make([][]candidate, len(reg.Members))
	t0 := time.Now()
	for k, mi := range reg.Members {
		func() {
			defer func() {
				if p := recover(); p != nil {
					cands[mi] = e.stayPutOnly(critical[mi])
					deg("worker-panic", fmt.Sprintf("GCP cell #%d quarantined: %v", mi, p))
					st.Quarantined++
				}
			}()
			cands[mi] = e.generateOne(0, mi, critical[mi])
		}()
		sub[k] = cands[mi]
	}
	run.gcp = time.Since(t0)
	t0 = time.Now()
	for _, mi := range reg.Members {
		func() {
			defer func() {
				if p := recover(); p != nil {
					resetGroupCosts(cands[mi])
					deg("worker-panic", fmt.Sprintf("ECC group #%d quarantined: %v", mi, p))
					st.Quarantined++
				}
			}()
			e.estimateGroup(e.ovs[0], mi, cands[mi])
		}()
	}
	run.ecc = time.Since(t0)
	t0 = time.Now()
	run.sub = sub
	run.chosen, run.sol, run.usedGreedy = e.selectCandidates(ctx, sub)
	run.ilpT = time.Since(t0)
	run.total = time.Since(start)
	run.timedOut = false
	run.done = true
	st.Shard.SerialRedo++
}

// mergeSelections recombines the per-region selection solves into the
// global chosen set, or falls back to the global serial selection when the
// recombination is not provably identical to it.
//
// The recombination is exact when (a) every region solved to certified
// optimality without the greedy fallback, (b) no selection hooks are
// installed (a hook sees one global solve on the serial path, N regional
// solves here), (c) no time limit can bind (per-solve or ctx deadline —
// wall-clock budgets expire at different points in different schedules),
// and (d) the summed node count stays below the shared MaxNodes budget.
// Under those conditions the global model is the disjoint union of the
// region models, the solver decomposes it into the same components with
// per-component node counts that are pure functions of the component
// models, and its budget cannot expire mid-sequence — so per-component
// optima, the total node count, and the Optimal status all coincide with
// the serial solve. The chosen order is reconstructed from the serial
// path's invariant: pruned-fixed cells first in ascending cell order, then
// the active cells' picks in ascending cell order.
func (e *Engine) mergeSelections(ctx context.Context, cands [][]candidate, runs []regionRun, ss *ShardIterStats) (_ []*candidate, _ ilp.Solution, usedGreedy bool) {
	exact := e.Cfg.Hooks.ILPOptions == nil && e.Cfg.Hooks.SolveSelection == nil &&
		e.Cfg.ILPTimeLimit == 0
	if _, hasDL := ctx.Deadline(); hasDL {
		exact = false
	}
	totalNodes := 0
	for ri := range runs {
		totalNodes += runs[ri].sol.Nodes
		if runs[ri].usedGreedy || runs[ri].sol.Status != ilp.Optimal {
			exact = false
		}
	}
	if e.Cfg.SelectMaxNodes > 0 && totalNodes >= e.Cfg.SelectMaxNodes {
		exact = false
	}
	if !exact {
		ss.SelectFallback = true
		return e.selectCandidates(ctx, cands)
	}

	pick := make(map[int32]*candidate)
	for ri := range runs {
		for _, c := range runs[ri].chosen {
			pick[c.cell] = c
		}
	}
	chosen, active := pruneDominated(cands)
	for _, cc := range active {
		c, ok := pick[cands[cc.ci][cc.list[0]].cell]
		if !ok {
			// A region's solve dropped an active cell: cannot happen (the
			// region saw the same candidates and costs), but fall back
			// rather than emit a short chosen set.
			ss.SelectFallback = true
			return e.selectCandidates(ctx, cands)
		}
		chosen = append(chosen, c)
	}
	return chosen, ilp.Solution{Status: ilp.Optimal, HasIncumbent: true, Nodes: totalNodes}, false
}

// mergeUpdate is the update-database phase of a sharded iteration: apply
// the chosen moves, then reroute every affected net region-major inside one
// transaction, optimistically assuming regions' demand writes stay inside
// their declared GCell footprints. The journal check afterwards proves the
// assumption on the O(Δ) op log; any violation (or any maze fallback, whose
// demand reads are unbounded) discards the transaction and replays the
// whole update in the serial order. Footprint disjointness plus bounded
// reads make the region-major order a permutation of the serial ascending
// order over commuting operations, so a clean speculative merge commits
// bit-identical state.
func (e *Engine) mergeUpdate(epoch0 uint64, chosen []*candidate, curCost map[int32]float64, regions []shard.Region, critical []int32, st *IterStats, ss *ShardIterStats) (*view.Txn, []int32) {
	var ud IterStats // scratch for the speculative attempt's bookkeeping
	txn := e.V.Begin(epoch0)
	movedSet := e.applyMoveSet(txn, chosen, curCost, &ud)
	nets := e.affectedNets(movedSet)

	regionNets, footprints, ok := e.planRegionReroutes(chosen, regions, critical, nets)
	serialized := !ok
	if !serialized {
	pairs:
		for a := 0; a < len(footprints); a++ {
			for b := a + 1; b < len(footprints); b++ {
				if footprints[a].Overlaps(footprints[b]) {
					ss.MergeConflicts++
					serialized = true
					break pairs
				}
			}
		}
	}

	if serialized {
		// Footprints overlap (or a net has no owner): reroute in the serial
		// global order directly — nothing speculative to verify.
		ss.MergeSerialized = true
		for _, nid := range nets {
			txn.RerouteNet(nid)
		}
		ud.ReroutedNets = len(nets)
		copyUDStats(st, &ud)
		return txn, sortedCellIDs(movedSet)
	}

	// Region-major speculative reroutes, each region's demand ops tagged as
	// one journal segment.
	replay := false
	for ri := range regions {
		if len(regionNets[ri]) == 0 {
			continue
		}
		txn.BeginSegment(ri)
		for _, nid := range regionNets[ri] {
			if txn.RerouteNetTracked(nid) {
				ss.MazeReroutes++
				replay = true
			}
		}
	}
	if !replay {
		for _, seg := range txn.Segments() {
			fp := footprints[seg.Tag]
			for _, op := range seg.Ops {
				x, y := e.G.EdgeCell(op.Key)
				if !fp.Contains(geom.Pt(x, y)) {
					ss.MergeConflicts++
					replay = true
					break
				}
			}
			if replay {
				break
			}
		}
	}
	if replay {
		// A maze fallback read demand outside its footprint, or a write
		// escaped one: the speculative order is not provably serial-
		// equivalent. Discard everything and replay in the serial order.
		// The fresh transaction begins at the *current* version — the
		// discarded mutations advanced the epoch, and epoch0 bookkeeping
		// would no longer add up — which is sound because Discard restored
		// the state bit-exactly.
		ss.MergeSerialized = true
		txn.Discard()
		ud = IterStats{}
		txn = e.V.Begin(e.V.Version())
		movedSet = e.applyMoveSet(txn, chosen, curCost, &ud)
		for _, nid := range nets {
			txn.RerouteNet(nid)
		}
	}
	ud.ReroutedNets = len(nets)
	copyUDStats(st, &ud)
	return txn, sortedCellIDs(movedSet)
}

// copyUDStats copies the update-database bookkeeping of the attempt that
// actually committed into the iteration stats.
func copyUDStats(st, ud *IterStats) {
	st.EstBefore, st.EstAfter = ud.EstBefore, ud.EstAfter
	st.MovedCells, st.SkippedMoves = ud.MovedCells, ud.SkippedMoves
	st.ReroutedNets = ud.ReroutedNets
}

// planRegionReroutes assigns every affected net to the region that moved
// (one of) its cells and computes each region's demand footprint: the GCell
// bounding box of its nets' post-move terminals and pre-iteration routes,
// inflated by the halo. All demand writes of a region's reroutes — old
// route out, new route in — land inside its footprint unless the router
// fell back to maze search, and the pattern router's demand *reads* stay
// within one GCell of the terminal bbox, which the halo (≥1) covers; that
// is what makes disjoint footprints a commutation proof. ok is false when
// some net touches no moved cell (cannot happen; bail to the serial order
// rather than guess an owner).
func (e *Engine) planRegionReroutes(chosen []*candidate, regions []shard.Region, critical []int32, nets []int32) (regionNets [][]int32, footprints []geom.Rect, ok bool) {
	// Critical cell -> region ordinal, then moved cell -> region via the
	// candidate that moves it (conflict relocations are confined to the
	// critical cell's window, hence its region).
	cellRegion := make(map[int32]int)
	for ri, reg := range regions {
		for _, mi := range reg.Members {
			cellRegion[critical[mi]] = ri
		}
	}
	moverRegion := make(map[int32]int)
	for _, c := range chosen {
		if c.isCurrent {
			continue
		}
		ri, okc := cellRegion[c.cell]
		if !okc {
			return nil, nil, false
		}
		for _, mc := range c.movedCells() {
			moverRegion[mc] = ri
		}
	}

	// Net -> owning region: the lowest ordinal among regions whose moved
	// cells touch it. Nets stay ascending within each region (affectedNets
	// returns them ascending).
	regionNets = make([][]int32, len(regions))
	owners := make([]int, len(nets))
	for i, nid := range nets {
		owner := -1
		for _, pr := range e.D.Nets[nid].Pins {
			if ri, okm := moverRegion[pr.Cell]; okm && (owner < 0 || ri < owner) {
				owner = ri
			}
		}
		if owner < 0 {
			return nil, nil, false
		}
		owners[i] = owner
		regionNets[owner] = append(regionNets[owner], nid)
	}

	// Footprints in GCell space, from one quiescent overlay (positions are
	// already post-move at this point — the moves committed above).
	halo := e.Cfg.ShardHalo
	if halo <= 0 {
		halo = defaultShardHalo
	}
	ov := e.V.Overlay()
	type bbox struct {
		minX, minY, maxX, maxY int
		any                    bool
	}
	boxes := make([]bbox, len(regions))
	grow := func(b *bbox, x, y int) {
		if !b.any {
			b.minX, b.minY, b.maxX, b.maxY = x, y, x, y
			b.any = true
			return
		}
		b.minX, b.maxX = min(b.minX, x), max(b.maxX, x)
		b.minY, b.maxY = min(b.minY, y), max(b.maxY, y)
	}
	for i, nid := range nets {
		b := &boxes[owners[i]]
		for _, p := range ov.NetTerminals(nid) {
			x, y := e.G.GCellOf(p)
			grow(b, x, y)
		}
		if rt := e.V.Route(nid); rt != nil {
			for _, w := range rt.Wires {
				grow(b, w.X, w.Y)
			}
			for _, v := range rt.Vias {
				grow(b, v.X, v.Y)
			}
		}
	}
	footprints = make([]geom.Rect, len(regions))
	for ri, b := range boxes {
		if !b.any {
			continue // region rerouted nothing; empty rect overlaps nothing
		}
		footprints[ri] = geom.R(b.minX, b.minY, b.maxX+1, b.maxY+1).Expand(halo)
	}
	return regionNets, footprints, true
}
