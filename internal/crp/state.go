package crp

import (
	"fmt"
	"math/rand"
)

// countedSource wraps a math/rand source and tallies every value drawn.
// The count is the only thing a checkpoint needs to capture the RNG stream:
// re-seeding and drawing the same number of values restores the exact
// stream position, so a resumed run's Algorithm 1 acceptance draws are
// bit-identical to the uninterrupted run's.
type countedSource struct {
	src   rand.Source
	src64 rand.Source64 // non-nil when src implements Source64
	draws uint64
}

func newCountedSource(seed int64) *countedSource {
	s := &countedSource{}
	s.reset(seed)
	return s
}

func (s *countedSource) reset(seed int64) {
	s.src = rand.NewSource(seed)
	s.src64, _ = s.src.(rand.Source64)
	s.draws = 0
}

// Int63 implements rand.Source.
func (s *countedSource) Int63() int64 {
	s.draws++
	return s.src.Int63()
}

// Uint64 implements rand.Source64. rand.Rand prefers this method when the
// source provides it, so it must count draws exactly like Int63 — one draw
// per call — for the fast-forward replay to land on the same position.
func (s *countedSource) Uint64() uint64 {
	s.draws++
	if s.src64 != nil {
		return s.src64.Uint64()
	}
	// Fallback mirrors math/rand's own composition for 63-bit sources.
	return uint64(s.src.Int63())>>31 | uint64(s.src.Int63())<<32
}

// Seed implements rand.Source.
func (s *countedSource) Seed(seed int64) { s.reset(seed) }

// State is the engine-internal slice of resumable flow state: everything a
// checkpoint must record beyond the design, grid demand and routes (which
// live in their own packages). Capturing it between iterations and
// restoring it into a freshly built engine over identically restored
// design/grid/route state yields a bit-identical continuation.
type State struct {
	// Iter is the 1-based count of iterations the engine has started (the
	// value Degradation.Iter reports); at an iteration boundary it equals
	// the number of completed iterations.
	Iter int
	// RNGDraws is the number of values drawn from the seeded RNG stream.
	RNGDraws uint64
}

// State snapshots the engine's resumable internal state. Call it only at an
// iteration boundary (never while Iterate is running).
func (e *Engine) State() State {
	return State{Iter: e.iter, RNGDraws: e.src.draws}
}

// RestoreState rewinds a freshly constructed engine to a checkpointed
// State: the iteration counter is set and the RNG stream is re-seeded from
// Cfg.Seed and fast-forwarded draw by draw. Restoring RNGDraws drawn under
// a different seed silently yields a different (still valid) stream, so the
// flow layer validates the seed before calling this.
func (e *Engine) RestoreState(s State) error {
	if s.Iter < 0 {
		return fmt.Errorf("crp: negative iteration counter %d", s.Iter)
	}
	e.iter = s.Iter
	e.src.reset(e.Cfg.Seed)
	for e.src.draws < s.RNGDraws {
		e.src.Int63()
	}
	return nil
}

// Broken reports whether the engine latched an unrecoverable invariant
// violation; Run stops iterating once set, and external iteration loops
// (the checkpointing flow) must do the same.
func (e *Engine) Broken() bool { return e.broken }

// CheckInvariants runs the transactional-iteration invariant check (grid
// demand consistency against committed routes plus placement legality) on
// demand. The resume path runs it before continuing from a checkpoint, so a
// corrupt or mismatched restore is refused rather than iterated upon.
func (e *Engine) CheckInvariants() error { return e.checkInvariants() }
