package lefdef

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"github.com/crp-eda/crp/internal/db"
	"github.com/crp-eda/crp/internal/geom"
	"github.com/crp-eda/crp/internal/tech"
)

// tokenizer splits a LEF/DEF stream into whitespace-separated tokens,
// treating parentheses as standalone tokens (DEF surrounds them with
// whitespace anyway, but inputs from other tools may not).
type tokenizer struct {
	toks []string
	pos  int
}

func newTokenizer(r io.Reader) (*tokenizer, error) {
	var toks []string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	for sc.Scan() {
		line := sc.Text()
		if i := strings.Index(line, "#"); i >= 0 {
			line = line[:i]
		}
		line = strings.ReplaceAll(line, "(", " ( ")
		line = strings.ReplaceAll(line, ")", " ) ")
		toks = append(toks, strings.Fields(line)...)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return &tokenizer{toks: toks}, nil
}

func (t *tokenizer) done() bool { return t.pos >= len(t.toks) }

func (t *tokenizer) next() (string, error) {
	if t.done() {
		return "", io.ErrUnexpectedEOF
	}
	tok := t.toks[t.pos]
	t.pos++
	return tok, nil
}

func (t *tokenizer) peek() string {
	if t.done() {
		return ""
	}
	return t.toks[t.pos]
}

// expect consumes the next token and verifies it.
func (t *tokenizer) expect(want string) error {
	got, err := t.next()
	if err != nil {
		return err
	}
	if got != want {
		return fmt.Errorf("lefdef: expected %q, got %q (token %d)", want, got, t.pos)
	}
	return nil
}

func (t *tokenizer) nextInt() (int, error) {
	tok, err := t.next()
	if err != nil {
		return 0, err
	}
	v, err := strconv.Atoi(tok)
	if err != nil {
		return 0, fmt.Errorf("lefdef: expected integer, got %q", tok)
	}
	return v, nil
}

func (t *tokenizer) nextFloat() (float64, error) {
	tok, err := t.next()
	if err != nil {
		return 0, err
	}
	v, err := strconv.ParseFloat(tok, 64)
	if err != nil {
		return 0, fmt.Errorf("lefdef: expected number, got %q", tok)
	}
	return v, nil
}

// skipStatement consumes tokens through the next ";".
func (t *tokenizer) skipStatement() error {
	for {
		tok, err := t.next()
		if err != nil {
			return err
		}
		if tok == ";" {
			return nil
		}
	}
}

// ParseLEF reads the technology and macro library from the subset emitted
// by WriteLEF. Unknown statements inside known sections are skipped, so
// mildly richer LEF files still parse.
func ParseLEF(r io.Reader) (*tech.Tech, []*db.Macro, error) {
	tk, err := newTokenizer(r)
	if err != nil {
		return nil, nil, err
	}
	t := &tech.Tech{Name: "lef", Node: "lef"}
	var macros []*db.Macro
	dbu := 1000 // default when UNITS precedes nothing
	toDBU := func(v float64) int { return int(math.Round(v * float64(dbu))) }
	toDBUArea := func(v float64) int { return int(math.Round(v * float64(dbu) * float64(dbu))) }

	for !tk.done() {
		tok, _ := tk.next()
		switch tok {
		case "VERSION", "BUSBITCHARS", "DIVIDERCHAR":
			if err := tk.skipStatement(); err != nil {
				return nil, nil, err
			}
		case "UNITS":
			for tk.peek() != "END" {
				f, err := tk.next()
				if err != nil {
					return nil, nil, err
				}
				if f == "DATABASE" {
					if err := tk.expect("MICRONS"); err != nil {
						return nil, nil, err
					}
					if dbu, err = tk.nextInt(); err != nil {
						return nil, nil, err
					}
					if err := tk.expect(";"); err != nil {
						return nil, nil, err
					}
				}
			}
			tk.next() // END
			tk.next() // UNITS
			t.DBU = dbu
		case "LAYER":
			l, err := parseLayer(tk, toDBU, toDBUArea)
			if err != nil {
				return nil, nil, err
			}
			l.Index = len(t.Layers)
			t.Layers = append(t.Layers, l)
		case "VIA":
			v, err := parseVia(tk, t, toDBU)
			if err != nil {
				return nil, nil, err
			}
			t.Vias = append(t.Vias, v)
		case "SITE":
			s, err := parseSite(tk, toDBU)
			if err != nil {
				return nil, nil, err
			}
			t.Site = s
		case "MACRO":
			m, err := parseMacro(tk, t, toDBU)
			if err != nil {
				return nil, nil, err
			}
			macros = append(macros, m)
		case "END":
			tk.next() // LIBRARY
		default:
			return nil, nil, fmt.Errorf("lefdef: unexpected top-level token %q", tok)
		}
	}
	if t.DBU == 0 {
		t.DBU = dbu
	}
	if err := t.Validate(); err != nil {
		return nil, nil, fmt.Errorf("lefdef: parsed tech invalid: %w", err)
	}
	return t, macros, nil
}

func parseLayer(tk *tokenizer, toDBU, toDBUArea func(float64) int) (tech.Layer, error) {
	var l tech.Layer
	name, err := tk.next()
	if err != nil {
		return l, err
	}
	l.Name = name
	for {
		tok, err := tk.next()
		if err != nil {
			return l, err
		}
		switch tok {
		case "END":
			if _, err := tk.next(); err != nil { // layer name
				return l, err
			}
			return l, nil
		case "TYPE":
			if err := tk.skipStatement(); err != nil {
				return l, err
			}
		case "DIRECTION":
			d, err := tk.next()
			if err != nil {
				return l, err
			}
			if d == "VERTICAL" {
				l.Dir = tech.Vertical
			} else {
				l.Dir = tech.Horizontal
			}
			if err := tk.expect(";"); err != nil {
				return l, err
			}
		case "PITCH", "WIDTH", "SPACING", "OFFSET":
			v, err := tk.nextFloat()
			if err != nil {
				return l, err
			}
			switch tok {
			case "PITCH":
				l.Pitch = toDBU(v)
			case "WIDTH":
				l.Width = toDBU(v)
			case "SPACING":
				l.Spacing = toDBU(v)
			case "OFFSET":
				l.Offset = toDBU(v)
			}
			if err := tk.expect(";"); err != nil {
				return l, err
			}
		case "AREA":
			v, err := tk.nextFloat()
			if err != nil {
				return l, err
			}
			l.MinArea = toDBUArea(v)
			if err := tk.expect(";"); err != nil {
				return l, err
			}
		default:
			if err := tk.skipStatement(); err != nil {
				return l, err
			}
		}
	}
}

func parseVia(tk *tokenizer, t *tech.Tech, toDBU func(float64) int) (tech.ViaRule, error) {
	var v tech.ViaRule
	name, err := tk.next()
	if err != nil {
		return v, err
	}
	v.Name = name
	if tk.peek() == "DEFAULT" {
		tk.next()
	}
	for {
		tok, err := tk.next()
		if err != nil {
			return v, err
		}
		switch tok {
		case "END":
			if _, err := tk.next(); err != nil {
				return v, err
			}
			return v, nil
		case "LAYERBELOW":
			ln, err := tk.next()
			if err != nil {
				return v, err
			}
			found := false
			for _, l := range t.Layers {
				if l.Name == ln {
					v.Below = l.Index
					found = true
				}
			}
			if !found {
				return v, fmt.Errorf("lefdef: via %s references unknown layer %q", v.Name, ln)
			}
			if err := tk.expect(";"); err != nil {
				return v, err
			}
		case "CUTSIZE":
			f, err := tk.nextFloat()
			if err != nil {
				return v, err
			}
			v.CutSize = toDBU(f)
			if err := tk.expect(";"); err != nil {
				return v, err
			}
		default:
			if err := tk.skipStatement(); err != nil {
				return v, err
			}
		}
	}
}

func parseSite(tk *tokenizer, toDBU func(float64) int) (tech.Site, error) {
	var s tech.Site
	name, err := tk.next()
	if err != nil {
		return s, err
	}
	s.Name = name
	for {
		tok, err := tk.next()
		if err != nil {
			return s, err
		}
		switch tok {
		case "END":
			if _, err := tk.next(); err != nil {
				return s, err
			}
			return s, nil
		case "SIZE":
			w, err := tk.nextFloat()
			if err != nil {
				return s, err
			}
			if err := tk.expect("BY"); err != nil {
				return s, err
			}
			h, err := tk.nextFloat()
			if err != nil {
				return s, err
			}
			s.Width, s.Height = toDBU(w), toDBU(h)
			if err := tk.expect(";"); err != nil {
				return s, err
			}
		default:
			if err := tk.skipStatement(); err != nil {
				return s, err
			}
		}
	}
}

func parseMacro(tk *tokenizer, t *tech.Tech, toDBU func(float64) int) (*db.Macro, error) {
	m := &db.Macro{}
	name, err := tk.next()
	if err != nil {
		return nil, err
	}
	m.Name = name
	for {
		tok, err := tk.next()
		if err != nil {
			return nil, err
		}
		switch tok {
		case "END":
			end, err := tk.next()
			if err != nil {
				return nil, err
			}
			if end != m.Name {
				return nil, fmt.Errorf("lefdef: MACRO %s terminated by END %s", m.Name, end)
			}
			return m, nil
		case "SIZE":
			w, err := tk.nextFloat()
			if err != nil {
				return nil, err
			}
			if err := tk.expect("BY"); err != nil {
				return nil, err
			}
			h, err := tk.nextFloat()
			if err != nil {
				return nil, err
			}
			m.Width, m.Height = toDBU(w), toDBU(h)
			if err := tk.expect(";"); err != nil {
				return nil, err
			}
		case "PIN":
			p, err := parsePin(tk, t, toDBU)
			if err != nil {
				return nil, err
			}
			m.Pins = append(m.Pins, p)
		default:
			if err := tk.skipStatement(); err != nil {
				return nil, err
			}
		}
	}
}

func parsePin(tk *tokenizer, t *tech.Tech, toDBU func(float64) int) (db.PinDef, error) {
	var p db.PinDef
	name, err := tk.next()
	if err != nil {
		return p, err
	}
	p.Name = name
	for {
		tok, err := tk.next()
		if err != nil {
			return p, err
		}
		switch tok {
		case "END":
			end, err := tk.next()
			if err != nil {
				return p, err
			}
			if end != p.Name {
				return p, fmt.Errorf("lefdef: PIN %s terminated by END %s", p.Name, end)
			}
			return p, nil
		case "PORT":
			// PORT ... END block.
			for {
				ptok, err := tk.next()
				if err != nil {
					return p, err
				}
				if ptok == "END" {
					break
				}
				switch ptok {
				case "LAYER":
					ln, err := tk.next()
					if err != nil {
						return p, err
					}
					if l, ok := t.LayerByName(ln); ok {
						p.Layer = l.Index
					}
					if err := tk.expect(";"); err != nil {
						return p, err
					}
				case "POINT":
					x, err := tk.nextFloat()
					if err != nil {
						return p, err
					}
					y, err := tk.nextFloat()
					if err != nil {
						return p, err
					}
					p.Offset = geom.Pt(toDBU(x), toDBU(y))
					if err := tk.expect(";"); err != nil {
						return p, err
					}
				default:
					if err := tk.skipStatement(); err != nil {
						return p, err
					}
				}
			}
		default:
			if err := tk.skipStatement(); err != nil {
				return p, err
			}
		}
	}
}
