package lefdef

import (
	"bytes"
	"strings"
	"testing"

	"github.com/crp-eda/crp/internal/grid"
	"github.com/crp-eda/crp/internal/ispd"
	"github.com/crp-eda/crp/internal/route/global"
)

func TestLEFRoundTrip(t *testing.T) {
	d, err := ispd.Generate(ispd.Spec{
		Name: "rt", Node: "n45", Cells: 120, Nets: 80,
		Utilisation: 0.85, Obstacles: 1, IOFraction: 0.1, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteLEF(&buf, d.Tech, d.Macros); err != nil {
		t.Fatal(err)
	}
	t2, macros, err := ParseLEF(&buf)
	if err != nil {
		t.Fatalf("ParseLEF: %v\n%s", err, buf.String()[:min(2000, buf.Len())])
	}
	if t2.DBU != d.Tech.DBU {
		t.Errorf("DBU %d != %d", t2.DBU, d.Tech.DBU)
	}
	if t2.NumLayers() != d.Tech.NumLayers() {
		t.Fatalf("layers %d != %d", t2.NumLayers(), d.Tech.NumLayers())
	}
	for i, l := range d.Tech.Layers {
		l2 := t2.Layers[i]
		if l2.Name != l.Name || l2.Dir != l.Dir || l2.Pitch != l.Pitch ||
			l2.Width != l.Width || l2.Spacing != l.Spacing || l2.MinArea != l.MinArea {
			t.Errorf("layer %d mismatch: %+v vs %+v", i, l2, l)
		}
	}
	if t2.Site != d.Tech.Site {
		t.Errorf("site mismatch: %+v vs %+v", t2.Site, d.Tech.Site)
	}
	if len(macros) != len(d.Macros) {
		t.Fatalf("macros %d != %d", len(macros), len(d.Macros))
	}
	for i, m := range d.Macros {
		m2 := macros[i]
		if m2.Name != m.Name || m2.Width != m.Width || m2.Height != m.Height {
			t.Errorf("macro %s geometry mismatch", m.Name)
		}
		if len(m2.Pins) != len(m.Pins) {
			t.Fatalf("macro %s pins %d != %d", m.Name, len(m2.Pins), len(m.Pins))
		}
		for j := range m.Pins {
			if m2.Pins[j] != m.Pins[j] {
				t.Errorf("macro %s pin %d: %+v vs %+v", m.Name, j, m2.Pins[j], m.Pins[j])
			}
		}
	}
}

func TestDEFRoundTrip(t *testing.T) {
	d, err := ispd.Generate(ispd.Spec{
		Name: "defrt", Node: "n32", Cells: 150, Nets: 100,
		Utilisation: 0.85, Obstacles: 2, IOFraction: 0.2, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	var lef, def bytes.Buffer
	if err := WriteLEF(&lef, d.Tech, d.Macros); err != nil {
		t.Fatal(err)
	}
	if err := WriteDEF(&def, d); err != nil {
		t.Fatal(err)
	}
	t2, macros, err := ParseLEF(&lef)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := ParseDEF(&def, t2, macros)
	if err != nil {
		t.Fatalf("ParseDEF: %v", err)
	}
	if d2.Name != d.Name {
		t.Errorf("name %q != %q", d2.Name, d.Name)
	}
	if d2.Die != d.Die {
		t.Errorf("die %v != %v", d2.Die, d.Die)
	}
	if len(d2.Rows) != len(d.Rows) || len(d2.Cells) != len(d.Cells) || len(d2.Nets) != len(d.Nets) {
		t.Fatalf("counts differ: rows %d/%d cells %d/%d nets %d/%d",
			len(d2.Rows), len(d.Rows), len(d2.Cells), len(d.Cells), len(d2.Nets), len(d.Nets))
	}
	for i, c := range d.Cells {
		c2 := d2.Cells[i]
		if c2.Name != c.Name || c2.Pos != c.Pos || c2.Orient != c.Orient ||
			c2.Fixed != c.Fixed || c2.Macro.Name != c.Macro.Name {
			t.Errorf("cell %d mismatch: %+v vs %+v", i, c2, c)
		}
	}
	for i, n := range d.Nets {
		n2 := d2.Nets[i]
		if n2.Name != n.Name || len(n2.Pins) != len(n.Pins) || len(n2.IOs) != len(n.IOs) {
			t.Fatalf("net %d mismatch", i)
		}
		for j := range n.Pins {
			if n2.Pins[j] != n.Pins[j] {
				t.Errorf("net %s pin %d: %+v vs %+v", n.Name, j, n2.Pins[j], n.Pins[j])
			}
		}
		for j := range n.IOs {
			if n2.IOs[j] != n.IOs[j] {
				t.Errorf("net %s IO %d mismatch", n.Name, j)
			}
		}
	}
	if len(d2.Obs) != len(d.Obs) {
		t.Fatalf("obstacles %d != %d", len(d2.Obs), len(d.Obs))
	}
	for i := range d.Obs {
		if d2.Obs[i].Rect != d.Obs[i].Rect {
			t.Errorf("obstacle %d rect mismatch", i)
		}
	}
	// The parsed design is fully valid.
	if err := d2.Validate(); err != nil {
		t.Fatalf("parsed design invalid: %v", err)
	}
	// HPWL identical: pins resolved to the same geometry.
	if d2.TotalHPWL() != d.TotalHPWL() {
		t.Errorf("HPWL %d != %d after round trip", d2.TotalHPWL(), d.TotalHPWL())
	}
}

func TestWriteGuides(t *testing.T) {
	d, err := ispd.Generate(ispd.Spec{
		Name: "guides", Node: "n45", Cells: 80, Nets: 50,
		Utilisation: 0.8, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	g := grid.New(d, grid.DefaultParams())
	r := global.New(d, g, global.DefaultConfig())
	r.RouteAll()
	var buf bytes.Buffer
	if err := WriteGuides(&buf, d, g, r.Routes); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if len(out) == 0 {
		t.Fatal("empty guide file")
	}
	// Every routed net appears with a parenthesised box list.
	nRouted := 0
	for _, rt := range r.Routes {
		if rt != nil {
			nRouted++
		}
	}
	if got := strings.Count(out, "(\n"); got != nRouted {
		t.Errorf("guide blocks = %d, want %d", got, nRouted)
	}
	// Boxes have 4 coordinates + a known layer name.
	for _, line := range strings.Split(out, "\n") {
		f := strings.Fields(line)
		if len(f) == 5 {
			if _, ok := d.Tech.LayerByName(f[4]); !ok {
				t.Fatalf("guide references unknown layer %q", f[4])
			}
		}
	}
}

func TestParseLEFRejectsGarbage(t *testing.T) {
	if _, _, err := ParseLEF(strings.NewReader("THIS IS NOT LEF ;")); err == nil {
		t.Error("garbage LEF accepted")
	}
}

func TestParseDEFRejectsUnknownMacro(t *testing.T) {
	d, err := ispd.Generate(ispd.Spec{
		Name: "um", Node: "n45", Cells: 60, Nets: 30, Utilisation: 0.8, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	var def bytes.Buffer
	if err := WriteDEF(&def, d); err != nil {
		t.Fatal(err)
	}
	// Parse with an empty macro library.
	if _, err := ParseDEF(&def, d.Tech, nil); err == nil {
		t.Error("DEF with unresolvable macros accepted")
	}
}

func TestTokenizerHandlesCommentsAndParens(t *testing.T) {
	tk, err := newTokenizer(strings.NewReader("A (1 2) # comment\nB ;"))
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"A", "(", "1", "2", ")", "B", ";"}
	for _, w := range want {
		got, err := tk.next()
		if err != nil || got != w {
			t.Fatalf("token = %q (%v), want %q", got, err, w)
		}
	}
	if !tk.done() {
		t.Error("tokens left over")
	}
}
