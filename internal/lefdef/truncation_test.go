package lefdef

import (
	"bytes"
	"strings"
	"testing"

	"github.com/crp-eda/crp/internal/ispd"
)

// Truncated inputs must produce errors, never panics or silent half-parsed
// results. This drives the tokenizer and every section parser through their
// unexpected-EOF paths.
func TestTruncatedInputsFailCleanly(t *testing.T) {
	d, err := ispd.Generate(ispd.Spec{
		Name: "trunc", Node: "n45", Cells: 60, Nets: 40,
		Utilisation: 0.8, IOFraction: 0.2, Obstacles: 1, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	var lef, def bytes.Buffer
	if err := WriteLEF(&lef, d.Tech, d.Macros); err != nil {
		t.Fatal(err)
	}
	if err := WriteDEF(&def, d); err != nil {
		t.Fatal(err)
	}
	tech, macros, err := ParseLEF(bytes.NewReader(lef.Bytes()))
	if err != nil {
		t.Fatal(err)
	}

	lefStr := lef.String()
	// Cut at a spread of byte offsets; every cut must error (the only
	// exception would be cutting exactly at the end).
	for frac := 1; frac <= 9; frac++ {
		cut := len(lefStr) * frac / 10
		_, _, err := ParseLEF(strings.NewReader(lefStr[:cut]))
		if err == nil {
			t.Errorf("LEF truncated at %d/10 parsed successfully", frac)
		}
	}
	defStr := def.String()
	for frac := 1; frac <= 9; frac++ {
		cut := len(defStr) * frac / 10
		_, err := ParseDEF(strings.NewReader(defStr[:cut]), tech, macros)
		if err == nil {
			t.Errorf("DEF truncated at %d/10 parsed successfully", frac)
		}
	}
}

// Token-level corruption: swapping a keyword must error, not crash.
func TestCorruptedKeywordsFailCleanly(t *testing.T) {
	d, err := ispd.Generate(ispd.Spec{
		Name: "corrupt", Node: "n45", Cells: 50, Nets: 30,
		Utilisation: 0.8, Seed: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	var def bytes.Buffer
	if err := WriteDEF(&def, d); err != nil {
		t.Fatal(err)
	}
	for _, swap := range [][2]string{
		{"PLACED", "TELEPORTED"},
		{"DIEAREA", "PIEAREA"},
		{" N ;", " NORTHWEST ;"},
	} {
		corrupted := strings.Replace(def.String(), swap[0], swap[1], 1)
		if corrupted == def.String() {
			continue // keyword not present in this design
		}
		if _, err := ParseDEF(strings.NewReader(corrupted), d.Tech, d.Macros); err == nil {
			t.Errorf("corruption %q -> %q parsed successfully", swap[0], swap[1])
		}
	}
}

// An empty stream parses as an empty (invalid) library/design with a clear
// error rather than a panic.
func TestEmptyInputs(t *testing.T) {
	if _, _, err := ParseLEF(strings.NewReader("")); err == nil {
		t.Error("empty LEF accepted (tech cannot validate)")
	}
	d, err := ispd.Generate(ispd.Spec{
		Name: "e", Node: "n45", Cells: 50, Nets: 30, Utilisation: 0.8, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ParseDEF(strings.NewReader(""), d.Tech, d.Macros); err == nil {
		t.Error("empty DEF accepted (no rows/cells)")
	}
}
