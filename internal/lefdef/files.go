package lefdef

import (
	"io"

	"github.com/crp-eda/crp/internal/atomicio"
	"github.com/crp-eda/crp/internal/db"
	"github.com/crp-eda/crp/internal/grid"
	"github.com/crp-eda/crp/internal/route/global"
	"github.com/crp-eda/crp/internal/tech"
)

// The *File variants are the crash-safe way to put flow outputs on disk:
// each writes to a temp file in the destination directory, fsyncs, and
// renames into place, so a crash mid-write can never leave a torn or empty
// DEF/guide/LEF where a previous good output used to be.

// WriteLEFFile atomically writes the LEF to path.
func WriteLEFFile(path string, t *tech.Tech, macros []*db.Macro) error {
	return atomicio.WriteFile(path, func(w io.Writer) error {
		return WriteLEF(w, t, macros)
	})
}

// WriteDEFFile atomically writes the design's DEF to path.
func WriteDEFFile(path string, d *db.Design) error {
	return atomicio.WriteFile(path, func(w io.Writer) error {
		return WriteDEF(w, d)
	})
}

// WriteGuidesFile atomically writes the route guides to path.
func WriteGuidesFile(path string, d *db.Design, g *grid.Grid, routes []*global.Route) error {
	return atomicio.WriteFile(path, func(w io.Writer) error {
		return WriteGuides(w, d, g, routes)
	})
}
