package lefdef

import (
	"bytes"
	"strings"
	"testing"

	"github.com/crp-eda/crp/internal/ispd"
)

// Native fuzz targets: without -fuzz these run their seed corpus as normal
// tests; with `go test -fuzz=FuzzParseLEF ./internal/lefdef` they explore
// mutations. The invariant in both modes is the same: parsers must return
// errors, never panic, on arbitrary input.

func lefSeed(t testing.TB) string {
	d, err := ispd.Generate(ispd.Spec{
		Name: "fuzzseed", Node: "n45", Cells: 60, Nets: 40,
		Utilisation: 0.8, Seed: 77,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteLEF(&buf, d.Tech, d.Macros); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func FuzzParseLEF(f *testing.F) {
	f.Add(lefSeed(f))
	f.Add("")
	f.Add("LAYER m1\nEND m1\n")
	f.Add("MACRO A\nSIZE 1 BY\n")
	f.Fuzz(func(t *testing.T, input string) {
		// Must not panic; errors are fine.
		ParseLEF(strings.NewReader(input))
	})
}

func FuzzParseDEF(f *testing.F) {
	d, err := ispd.Generate(ispd.Spec{
		Name: "fuzzdef", Node: "n45", Cells: 60, Nets: 40,
		Utilisation: 0.8, Seed: 78,
	})
	if err != nil {
		f.Fatal(err)
	}
	var def bytes.Buffer
	if err := WriteDEF(&def, d); err != nil {
		f.Fatal(err)
	}
	f.Add(def.String())
	f.Add("")
	f.Add("DESIGN x ;\nDIEAREA ( 0 0 ) ( 10 10 ) ;\n")
	f.Fuzz(func(t *testing.T, input string) {
		ParseDEF(strings.NewReader(input), d.Tech, d.Macros)
	})
}

// FuzzDEFRoundTrip is the torn-file fuzz target behind the robustness work:
// any input that ParseDEF accepts must survive a full write → re-parse
// round trip with the design intact (same cells at the same positions, same
// nets), and any input it rejects must fail with an error, never a panic.
func FuzzDEFRoundTrip(f *testing.F) {
	d, err := ispd.Generate(ispd.Spec{
		Name: "fuzzrt", Node: "n45", Cells: 60, Nets: 40,
		Utilisation: 0.8, Seed: 79,
	})
	if err != nil {
		f.Fatal(err)
	}
	var def bytes.Buffer
	if err := WriteDEF(&def, d); err != nil {
		f.Fatal(err)
	}
	whole := def.String()
	f.Add(whole)
	// Torn-file seeds: prefixes of a valid DEF at several cut points.
	for _, frac := range []int{10, 50, 90} {
		f.Add(whole[:len(whole)*frac/100])
	}
	f.Add("")
	f.Add("DESIGN x ;\nEND DESIGN\n")
	f.Fuzz(func(t *testing.T, input string) {
		p1, err := ParseDEF(strings.NewReader(input), d.Tech, d.Macros)
		if err != nil {
			return // rejected without panicking: fine
		}
		var out bytes.Buffer
		if err := WriteDEF(&out, p1); err != nil {
			t.Fatalf("accepted design failed to write: %v", err)
		}
		p2, err := ParseDEF(strings.NewReader(out.String()), d.Tech, d.Macros)
		if err != nil {
			t.Fatalf("written DEF failed to re-parse: %v\n%s", err, out.String())
		}
		if len(p2.Cells) != len(p1.Cells) || len(p2.Nets) != len(p1.Nets) {
			t.Fatalf("round trip changed shape: %d/%d cells, %d/%d nets",
				len(p1.Cells), len(p2.Cells), len(p1.Nets), len(p2.Nets))
		}
		for i := range p1.Cells {
			a, b := p1.Cells[i], p2.Cells[i]
			if a.Name != b.Name || a.Pos != b.Pos || a.Orient != b.Orient {
				t.Fatalf("cell %d changed: %v@%v -> %v@%v", i, a.Name, a.Pos, b.Name, b.Pos)
			}
		}
	})
}
