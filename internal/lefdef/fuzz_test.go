package lefdef

import (
	"bytes"
	"strings"
	"testing"

	"github.com/crp-eda/crp/internal/ispd"
)

// Native fuzz targets: without -fuzz these run their seed corpus as normal
// tests; with `go test -fuzz=FuzzParseLEF ./internal/lefdef` they explore
// mutations. The invariant in both modes is the same: parsers must return
// errors, never panic, on arbitrary input.

func lefSeed(t testing.TB) string {
	d, err := ispd.Generate(ispd.Spec{
		Name: "fuzzseed", Node: "n45", Cells: 60, Nets: 40,
		Utilisation: 0.8, Seed: 77,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteLEF(&buf, d.Tech, d.Macros); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func FuzzParseLEF(f *testing.F) {
	f.Add(lefSeed(f))
	f.Add("")
	f.Add("LAYER m1\nEND m1\n")
	f.Add("MACRO A\nSIZE 1 BY\n")
	f.Fuzz(func(t *testing.T, input string) {
		// Must not panic; errors are fine.
		ParseLEF(strings.NewReader(input))
	})
}

func FuzzParseDEF(f *testing.F) {
	d, err := ispd.Generate(ispd.Spec{
		Name: "fuzzdef", Node: "n45", Cells: 60, Nets: 40,
		Utilisation: 0.8, Seed: 78,
	})
	if err != nil {
		f.Fatal(err)
	}
	var def bytes.Buffer
	if err := WriteDEF(&def, d); err != nil {
		f.Fatal(err)
	}
	f.Add(def.String())
	f.Add("")
	f.Add("DESIGN x ;\nDIEAREA ( 0 0 ) ( 10 10 ) ;\n")
	f.Fuzz(func(t *testing.T, input string) {
		ParseDEF(strings.NewReader(input), d.Tech, d.Macros)
	})
}
