package lefdef

import (
	"fmt"
	"io"

	"github.com/crp-eda/crp/internal/db"
	"github.com/crp-eda/crp/internal/geom"
	"github.com/crp-eda/crp/internal/tech"
)

// ParseDEF reads a design from the subset emitted by WriteDEF, resolving
// macro references against the supplied library.
func ParseDEF(r io.Reader, t *tech.Tech, macros []*db.Macro) (*db.Design, error) {
	tk, err := newTokenizer(r)
	if err != nil {
		return nil, err
	}
	macroByName := map[string]*db.Macro{}
	for _, m := range macros {
		macroByName[m.Name] = m
	}

	var (
		name  string
		die   geom.Rect
		rows  []db.Row
		cells []*db.Cell
		nets  []*db.Net
		obs   []db.Obstacle
	)
	cellByName := map[string]*db.Cell{}
	// IO pins arrive before NETS; stash them by net name.
	type pendingIO struct {
		io  db.IOPin
		net string
	}
	var ios []pendingIO

	for !tk.done() {
		tok, _ := tk.next()
		switch tok {
		case "VERSION", "UNITS":
			if err := tk.skipStatement(); err != nil {
				return nil, err
			}
		case "DESIGN":
			if name, err = tk.next(); err != nil {
				return nil, err
			}
			if err := tk.expect(";"); err != nil {
				return nil, err
			}
		case "DIEAREA":
			pts, err := parsePointPair(tk)
			if err != nil {
				return nil, err
			}
			die = geom.R(pts[0].X, pts[0].Y, pts[1].X, pts[1].Y)
			if err := tk.expect(";"); err != nil {
				return nil, err
			}
		case "ROW":
			row, err := parseRow(tk)
			if err != nil {
				return nil, err
			}
			row.Index = int32(len(rows))
			rows = append(rows, row)
		case "COMPONENTS":
			if err := tk.skipStatement(); err != nil { // count ;
				return nil, err
			}
			for tk.peek() == "-" {
				tk.next()
				c, err := parseComponent(tk, macroByName)
				if err != nil {
					return nil, err
				}
				c.ID = int32(len(cells))
				cells = append(cells, c)
				cellByName[c.Name] = c
			}
			if err := expectEnd(tk, "COMPONENTS"); err != nil {
				return nil, err
			}
		case "PINS":
			if err := tk.skipStatement(); err != nil {
				return nil, err
			}
			for tk.peek() == "-" {
				tk.next()
				pio, netName, err := parseIOPin(tk, t)
				if err != nil {
					return nil, err
				}
				ios = append(ios, pendingIO{pio, netName})
			}
			if err := expectEnd(tk, "PINS"); err != nil {
				return nil, err
			}
		case "BLOCKAGES":
			if err := tk.skipStatement(); err != nil {
				return nil, err
			}
			for tk.peek() == "-" {
				tk.next()
				o, err := parseBlockage(tk, t)
				if err != nil {
					return nil, err
				}
				obs = append(obs, o)
			}
			if err := expectEnd(tk, "BLOCKAGES"); err != nil {
				return nil, err
			}
		case "NETS":
			if err := tk.skipStatement(); err != nil {
				return nil, err
			}
			for tk.peek() == "-" {
				tk.next()
				n, err := parseNet(tk, cellByName)
				if err != nil {
					return nil, err
				}
				n.ID = int32(len(nets))
				nets = append(nets, n)
			}
			if err := expectEnd(tk, "NETS"); err != nil {
				return nil, err
			}
		case "END":
			tk.next() // DESIGN
		default:
			return nil, fmt.Errorf("lefdef: unexpected DEF token %q", tok)
		}
	}

	if name == "" {
		return nil, fmt.Errorf("lefdef: DEF has no DESIGN statement")
	}
	if die.Empty() {
		return nil, fmt.Errorf("lefdef: DEF %s has no DIEAREA", name)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("lefdef: DEF %s has no ROW statements", name)
	}

	// Attach IO pins to their nets.
	netByName := map[string]*db.Net{}
	for _, n := range nets {
		netByName[n.Name] = n
	}
	for _, p := range ios {
		n, ok := netByName[p.net]
		if !ok {
			return nil, fmt.Errorf("lefdef: IO pin %s references unknown net %q", p.io.Name, p.net)
		}
		n.IOs = append(n.IOs, p.io)
	}

	return db.New(name, t, die, rows, macros, cells, nets, obs)
}

func expectEnd(tk *tokenizer, section string) error {
	if err := tk.expect("END"); err != nil {
		return err
	}
	return tk.expect(section)
}

func parsePointPair(tk *tokenizer) ([2]geom.Point, error) {
	var out [2]geom.Point
	for i := 0; i < 2; i++ {
		if err := tk.expect("("); err != nil {
			return out, err
		}
		x, err := tk.nextInt()
		if err != nil {
			return out, err
		}
		y, err := tk.nextInt()
		if err != nil {
			return out, err
		}
		if err := tk.expect(")"); err != nil {
			return out, err
		}
		out[i] = geom.Pt(x, y)
	}
	return out, nil
}

func parseOrient(s string) (db.Orient, error) {
	switch s {
	case "N":
		return db.N, nil
	case "FS":
		return db.FS, nil
	default:
		return db.N, fmt.Errorf("lefdef: unsupported orientation %q", s)
	}
}

func parseRow(tk *tokenizer) (db.Row, error) {
	var row db.Row
	if _, err := tk.next(); err != nil { // row name
		return row, err
	}
	if _, err := tk.next(); err != nil { // site name
		return row, err
	}
	x, err := tk.nextInt()
	if err != nil {
		return row, err
	}
	y, err := tk.nextInt()
	if err != nil {
		return row, err
	}
	oTok, err := tk.next()
	if err != nil {
		return row, err
	}
	o, err := parseOrient(oTok)
	if err != nil {
		return row, err
	}
	if err := tk.expect("DO"); err != nil {
		return row, err
	}
	n, err := tk.nextInt()
	if err != nil {
		return row, err
	}
	// BY 1 STEP sx sy ;
	if err := tk.skipStatement(); err != nil {
		return row, err
	}
	row.X, row.Y, row.Orient, row.NumSites = x, y, o, n
	return row, nil
}

func parseComponent(tk *tokenizer, macros map[string]*db.Macro) (*db.Cell, error) {
	c := &db.Cell{}
	name, err := tk.next()
	if err != nil {
		return nil, err
	}
	c.Name = name
	mName, err := tk.next()
	if err != nil {
		return nil, err
	}
	m, ok := macros[mName]
	if !ok {
		return nil, fmt.Errorf("lefdef: component %s uses unknown macro %q", name, mName)
	}
	c.Macro = m
	if err := tk.expect("+"); err != nil {
		return nil, err
	}
	status, err := tk.next()
	if err != nil {
		return nil, err
	}
	switch status {
	case "PLACED":
	case "FIXED":
		c.Fixed = true
	default:
		return nil, fmt.Errorf("lefdef: component %s has unsupported status %q", name, status)
	}
	if err := tk.expect("("); err != nil {
		return nil, err
	}
	x, err := tk.nextInt()
	if err != nil {
		return nil, err
	}
	y, err := tk.nextInt()
	if err != nil {
		return nil, err
	}
	if err := tk.expect(")"); err != nil {
		return nil, err
	}
	oTok, err := tk.next()
	if err != nil {
		return nil, err
	}
	o, err := parseOrient(oTok)
	if err != nil {
		return nil, err
	}
	c.Pos = geom.Pt(x, y)
	c.Orient = o
	return c, tk.expect(";")
}

func parseIOPin(tk *tokenizer, t *tech.Tech) (db.IOPin, string, error) {
	var p db.IOPin
	name, err := tk.next()
	if err != nil {
		return p, "", err
	}
	p.Name = name
	var netName string
	for {
		tok, err := tk.next()
		if err != nil {
			return p, "", err
		}
		if tok == ";" {
			return p, netName, nil
		}
		if tok != "+" {
			return p, "", fmt.Errorf("lefdef: pin %s: expected '+', got %q", name, tok)
		}
		kind, err := tk.next()
		if err != nil {
			return p, "", err
		}
		switch kind {
		case "NET":
			if netName, err = tk.next(); err != nil {
				return p, "", err
			}
		case "LAYER":
			ln, err := tk.next()
			if err != nil {
				return p, "", err
			}
			if l, ok := t.LayerByName(ln); ok {
				p.Layer = l.Index
			} else {
				return p, "", fmt.Errorf("lefdef: pin %s on unknown layer %q", name, ln)
			}
		case "PLACED":
			if err := tk.expect("("); err != nil {
				return p, "", err
			}
			x, err := tk.nextInt()
			if err != nil {
				return p, "", err
			}
			y, err := tk.nextInt()
			if err != nil {
				return p, "", err
			}
			if err := tk.expect(")"); err != nil {
				return p, "", err
			}
			p.Pos = geom.Pt(x, y)
		default:
			return p, "", fmt.Errorf("lefdef: pin %s: unsupported clause %q", name, kind)
		}
	}
}

func parseBlockage(tk *tokenizer, t *tech.Tech) (db.Obstacle, error) {
	var o db.Obstacle
	name, err := tk.next()
	if err != nil {
		return o, err
	}
	o.Name = name
	if err := tk.expect("LAYERS"); err != nil {
		return o, err
	}
	for tk.peek() != "RECT" {
		ln, err := tk.next()
		if err != nil {
			return o, err
		}
		l, ok := t.LayerByName(ln)
		if !ok {
			return o, fmt.Errorf("lefdef: blockage %s on unknown layer %q", name, ln)
		}
		o.Layers = append(o.Layers, l.Index)
	}
	tk.next() // RECT
	pts, err := parsePointPair(tk)
	if err != nil {
		return o, err
	}
	o.Rect = geom.R(pts[0].X, pts[0].Y, pts[1].X, pts[1].Y)
	return o, tk.expect(";")
}

func parseNet(tk *tokenizer, cells map[string]*db.Cell) (*db.Net, error) {
	n := &db.Net{}
	name, err := tk.next()
	if err != nil {
		return nil, err
	}
	n.Name = name
	for {
		tok, err := tk.next()
		if err != nil {
			return nil, err
		}
		if tok == ";" {
			return n, nil
		}
		if tok != "(" {
			return nil, fmt.Errorf("lefdef: net %s: expected '(', got %q", name, tok)
		}
		first, err := tk.next()
		if err != nil {
			return nil, err
		}
		if first == "PIN" {
			// IO pin reference; resolved later via the PINS section, so
			// only consume the name.
			if _, err := tk.next(); err != nil {
				return nil, err
			}
		} else {
			pinName, err := tk.next()
			if err != nil {
				return nil, err
			}
			c, ok := cells[first]
			if !ok {
				return nil, fmt.Errorf("lefdef: net %s references unknown cell %q", name, first)
			}
			pinIdx := int32(-1)
			for i, p := range c.Macro.Pins {
				if p.Name == pinName {
					pinIdx = int32(i)
					break
				}
			}
			if pinIdx < 0 {
				return nil, fmt.Errorf("lefdef: net %s: macro %s has no pin %q", name, c.Macro.Name, pinName)
			}
			n.Pins = append(n.Pins, db.PinRef{Cell: c.ID, Pin: pinIdx})
		}
		if err := tk.expect(")"); err != nil {
			return nil, err
		}
	}
}
