// Package lefdef reads and writes the LEF/DEF subset the CR&P flow uses as
// its file interface (Fig. 1: LEF + DEF in, DEF + route guides out). The
// subset covers exactly what the flow consumes — routing layers, vias,
// sites and macro pins on the LEF side; die area, rows, components, IO pins,
// blockages and nets on the DEF side — with the standard statement syntax,
// so the files remain readable by LEF/DEF-aware tooling. Writer and reader
// round-trip: Parse(Write(x)) reproduces x.
package lefdef

import (
	"fmt"
	"io"

	"github.com/crp-eda/crp/internal/db"
	"github.com/crp-eda/crp/internal/geom"
	"github.com/crp-eda/crp/internal/grid"
	"github.com/crp-eda/crp/internal/route/global"
	"github.com/crp-eda/crp/internal/tech"
)

// WriteLEF emits the technology and the design's macro library.
func WriteLEF(w io.Writer, t *tech.Tech, macros []*db.Macro) error {
	ew := &errWriter{w: w}
	dbu := float64(t.DBU)
	um := func(v int) float64 { return float64(v) / dbu }

	ew.printf("VERSION 5.8 ;\n")
	ew.printf("BUSBITCHARS \"[]\" ;\n")
	ew.printf("DIVIDERCHAR \"/\" ;\n")
	ew.printf("UNITS\n  DATABASE MICRONS %d ;\nEND UNITS\n\n", t.DBU)

	for _, l := range t.Layers {
		dir := "HORIZONTAL"
		if l.Dir == tech.Vertical {
			dir = "VERTICAL"
		}
		ew.printf("LAYER %s\n", l.Name)
		ew.printf("  TYPE ROUTING ;\n")
		ew.printf("  DIRECTION %s ;\n", dir)
		ew.printf("  PITCH %.4f ;\n", um(l.Pitch))
		ew.printf("  WIDTH %.4f ;\n", um(l.Width))
		ew.printf("  SPACING %.4f ;\n", um(l.Spacing))
		ew.printf("  AREA %.6f ;\n", float64(l.MinArea)/(dbu*dbu))
		ew.printf("  OFFSET %.4f ;\n", um(l.Offset))
		ew.printf("END %s\n\n", l.Name)
	}
	for _, v := range t.Vias {
		ew.printf("VIA %s DEFAULT\n", v.Name)
		ew.printf("  LAYERBELOW %s ;\n", t.Layers[v.Below].Name)
		ew.printf("  CUTSIZE %.4f ;\n", um(v.CutSize))
		ew.printf("END %s\n\n", v.Name)
	}
	ew.printf("SITE %s\n  CLASS CORE ;\n  SIZE %.4f BY %.4f ;\nEND %s\n\n",
		t.Site.Name, um(t.Site.Width), um(t.Site.Height), t.Site.Name)

	for _, m := range macros {
		ew.printf("MACRO %s\n", m.Name)
		ew.printf("  CLASS CORE ;\n")
		ew.printf("  SIZE %.4f BY %.4f ;\n", um(m.Width), um(m.Height))
		ew.printf("  SITE %s ;\n", t.Site.Name)
		for _, p := range m.Pins {
			ew.printf("  PIN %s\n", p.Name)
			ew.printf("    PORT\n")
			ew.printf("      LAYER %s ;\n", t.Layers[p.Layer].Name)
			ew.printf("      POINT %.4f %.4f ;\n", um(p.Offset.X), um(p.Offset.Y))
			ew.printf("    END\n")
			ew.printf("  END %s\n", p.Name)
		}
		ew.printf("END %s\n\n", m.Name)
	}
	ew.printf("END LIBRARY\n")
	return ew.err
}

// WriteDEF emits the design: floorplan, placement and netlist.
func WriteDEF(w io.Writer, d *db.Design) error {
	ew := &errWriter{w: w}
	t := d.Tech

	ew.printf("VERSION 5.8 ;\n")
	ew.printf("DESIGN %s ;\n", d.Name)
	ew.printf("UNITS DISTANCE MICRONS %d ;\n\n", t.DBU)
	ew.printf("DIEAREA ( %d %d ) ( %d %d ) ;\n\n", d.Die.Lo.X, d.Die.Lo.Y, d.Die.Hi.X, d.Die.Hi.Y)

	for _, r := range d.Rows {
		ew.printf("ROW row_%d %s %d %d %s DO %d BY 1 STEP %d 0 ;\n",
			r.Index, t.Site.Name, r.X, r.Y, r.Orient, r.NumSites, t.Site.Width)
	}
	ew.printf("\nCOMPONENTS %d ;\n", len(d.Cells))
	for _, c := range d.Cells {
		status := "PLACED"
		if c.Fixed {
			status = "FIXED"
		}
		ew.printf("- %s %s + %s ( %d %d ) %s ;\n", c.Name, c.Macro.Name, status, c.Pos.X, c.Pos.Y, c.Orient)
	}
	ew.printf("END COMPONENTS\n\n")

	nIOs := 0
	for _, n := range d.Nets {
		nIOs += len(n.IOs)
	}
	ew.printf("PINS %d ;\n", nIOs)
	for _, n := range d.Nets {
		for _, io := range n.IOs {
			ew.printf("- %s + NET %s + LAYER %s + PLACED ( %d %d ) ;\n",
				io.Name, n.Name, t.Layers[io.Layer].Name, io.Pos.X, io.Pos.Y)
		}
	}
	ew.printf("END PINS\n\n")

	ew.printf("BLOCKAGES %d ;\n", len(d.Obs))
	for _, o := range d.Obs {
		ew.printf("- %s LAYERS", o.Name)
		for _, l := range o.Layers {
			ew.printf(" %s", t.Layers[l].Name)
		}
		ew.printf(" RECT ( %d %d ) ( %d %d ) ;\n", o.Rect.Lo.X, o.Rect.Lo.Y, o.Rect.Hi.X, o.Rect.Hi.Y)
	}
	ew.printf("END BLOCKAGES\n\n")

	ew.printf("NETS %d ;\n", len(d.Nets))
	for _, n := range d.Nets {
		ew.printf("- %s", n.Name)
		for _, pr := range n.Pins {
			c := d.Cells[pr.Cell]
			ew.printf(" ( %s %s )", c.Name, c.Macro.Pins[pr.Pin].Name)
		}
		for _, io := range n.IOs {
			ew.printf(" ( PIN %s )", io.Name)
		}
		ew.printf(" ;\n")
	}
	ew.printf("END NETS\n\n")
	ew.printf("END DESIGN\n")
	return ew.err
}

// WriteGuides emits the route-guide file handed to the detailed router in
// the ISPD-2018 guide format: for each net, one DBU box per GCell edge its
// route occupies, tagged with the layer name.
func WriteGuides(w io.Writer, d *db.Design, g *grid.Grid, routes []*global.Route) error {
	ew := &errWriter{w: w}
	for _, rt := range routes {
		if rt == nil {
			continue
		}
		n := d.Nets[rt.NetID]
		ew.printf("%s\n(\n", n.Name)
		for _, wire := range rt.Wires {
			a := g.GCellRect(wire.X, wire.Y)
			var b geom.Rect
			if d.Tech.Layer(wire.L).Dir == tech.Horizontal {
				b = g.GCellRect(wire.X+1, wire.Y)
			} else {
				b = g.GCellRect(wire.X, wire.Y+1)
			}
			u := a.Union(b)
			ew.printf("%d %d %d %d %s\n", u.Lo.X, u.Lo.Y, u.Hi.X, u.Hi.Y, d.Tech.Layer(wire.L).Name)
		}
		for _, v := range rt.Vias {
			r := g.GCellRect(v.X, v.Y)
			ew.printf("%d %d %d %d %s\n", r.Lo.X, r.Lo.Y, r.Hi.X, r.Hi.Y, d.Tech.Layer(v.L).Name)
			ew.printf("%d %d %d %d %s\n", r.Lo.X, r.Lo.Y, r.Hi.X, r.Hi.Y, d.Tech.Layer(v.L+1).Name)
		}
		ew.printf(")\n")
	}
	return ew.err
}

type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}
