package view_test

import (
	"reflect"
	"testing"

	"github.com/crp-eda/crp/internal/geom"
	"github.com/crp-eda/crp/internal/grid"
	"github.com/crp-eda/crp/internal/view"
)

// TestTxnSegmentsAndJournalStats exercises the sharded merge's transaction
// surface: tagged segments partition the op log in execution order, and
// JournalStats reports the journal's working set without reflection.
func TestTxnSegmentsAndJournalStats(t *testing.T) {
	v := buildView(t, fixtureSpec())
	d := v.Design()
	txn := v.Begin(v.Version())
	defer txn.Discard()

	if w, vias, muts := txn.JournalStats(); w != 0 || vias != 0 || muts != 0 {
		t.Fatalf("fresh transaction journal not empty: wires=%d vias=%d mutations=%d", w, vias, muts)
	}
	if segs := txn.Segments(); len(segs) != 0 {
		t.Fatalf("fresh transaction has %d segments", len(segs))
	}

	txn.BeginSegment(7)
	txn.RerouteNetTracked(0)
	txn.BeginSegment(3)
	txn.RerouteNetTracked(int32(len(d.Nets) - 1))
	txn.BeginSegment(9) // empty trailing segment

	segs := txn.Segments()
	if len(segs) != 3 {
		t.Fatalf("got %d segments, want 3", len(segs))
	}
	if segs[0].Tag != 7 || segs[1].Tag != 3 || segs[2].Tag != 9 {
		t.Fatalf("segment tags %d/%d/%d not in execution order", segs[0].Tag, segs[1].Tag, segs[2].Tag)
	}
	if len(segs[2].Ops) != 0 {
		t.Errorf("trailing empty segment recorded %d ops", len(segs[2].Ops))
	}
	total := 0
	for _, s := range segs {
		total += len(s.Ops)
	}
	_, _, muts := txn.JournalStats()
	if uint64(total) != muts {
		t.Errorf("segments hold %d ops, journal counted %d mutations", total, muts)
	}
	if muts == 0 {
		t.Error("rerouting two nets recorded no demand mutations; the segment test is vacuous")
	}
	wires, vias, _ := txn.JournalStats()
	if wires+vias == 0 {
		t.Error("journal reports no touched edges after reroutes")
	}
}

// TestIntersectOps pins the conflict detector's contract on hand-built op
// logs: first-appearance order of the first argument, per-key dedup, and
// wire/via key spaces that never collide.
func TestIntersectOps(t *testing.T) {
	k1 := grid.EdgeKey{L: 0, I: 5}
	k2 := grid.EdgeKey{L: 1, I: 9}
	k3 := grid.EdgeKey{L: 2, I: 1}
	wire := func(k grid.EdgeKey) grid.JournalOp { return grid.JournalOp{Key: k, Delta: 1} }
	via := func(k grid.EdgeKey) grid.JournalOp { return grid.JournalOp{Key: k, Delta: 1, Via: true} }

	if got := view.IntersectOps(nil, []grid.JournalOp{wire(k1)}); len(got) != 0 {
		t.Errorf("empty a intersected to %v", got)
	}
	if got := view.IntersectOps([]grid.JournalOp{wire(k1)}, []grid.JournalOp{wire(k2)}); len(got) != 0 {
		t.Errorf("disjoint logs intersected to %v", got)
	}
	// Same EdgeKey in different spaces is NOT a conflict.
	if got := view.IntersectOps([]grid.JournalOp{wire(k1)}, []grid.JournalOp{via(k1)}); len(got) != 0 {
		t.Errorf("wire and via edges with equal keys intersected to %v", got)
	}
	// First-appearance order of a, duplicates collapsed.
	a := []grid.JournalOp{wire(k3), wire(k1), wire(k3), via(k2), wire(k1)}
	b := []grid.JournalOp{wire(k1), wire(k3), via(k2), wire(k2)}
	want := []grid.EdgeKey{k3, k1, k2}
	if got := view.IntersectOps(a, b); !reflect.DeepEqual(got, want) {
		t.Errorf("IntersectOps = %v, want %v (first-appearance order of a, deduped)", got, want)
	}
}

// TestOverlays pins the worker-overlay fan-out helper: n independent
// overlays over the same base, each seeing its own staged positions only.
func TestOverlays(t *testing.T) {
	v := buildView(t, fixtureSpec())
	d := v.Design()
	ovs := v.Overlays(3)
	if len(ovs) != 3 {
		t.Fatalf("Overlays(3) returned %d overlays", len(ovs))
	}
	var mover int32 = -1
	for _, c := range d.Cells {
		if !c.Fixed {
			mover = c.ID
			break
		}
	}
	if mover < 0 {
		t.Fatal("fixture has no movable cell")
	}
	base := ovs[1].Pos(mover)
	staged := base.Add(geom.Point{X: 1})
	ovs[0].Stage(mover, staged)
	if got := ovs[0].Pos(mover); got != staged {
		t.Errorf("staging overlay reads %v, staged %v", got, staged)
	}
	if got := ovs[1].Pos(mover); got != base {
		t.Errorf("sibling overlay reads %v, want base %v — overlays are not independent", got, base)
	}
	ovs[0].Discard()
	if got := ovs[0].Pos(mover); got != base {
		t.Errorf("after Discard overlay reads %v, want base %v", got, base)
	}
}
