package view

import (
	"fmt"
	"math"
	"sort"

	"github.com/crp-eda/crp/internal/db"
	"github.com/crp-eda/crp/internal/geom"
	"github.com/crp-eda/crp/internal/grid"
	"github.com/crp-eda/crp/internal/route/global"
)

// Txn is the write layer: one transaction of committed-state mutation —
// the CR&P update-database phase uses exactly one per iteration. All writes
// go through it (MoveCells, RerouteNet); it keeps what undo needs:
//
//   - a full position pre-image. Positions are deliberately NOT O(Δ): the
//     base design is shared with code outside the transaction (hooks, fault
//     injection), and db.Restore over the full snapshot is what lets a
//     Discard repair even out-of-band position corruption — the behaviour
//     the chaos suite's rollback test pins down. Demand and routes, whose
//     stores the transaction exclusively owns, are undone O(Δ).
//   - each rerouted net's pre-transaction route pointer, captured on first
//     touch (RerouteNet rips the old route out of the grid before the new
//     one commits, so the pointer is the only remaining handle).
//   - a grid demand journal recording every AddWire/AddVia while the
//     transaction is open.
//
// Check verifies the transaction's invariants on the journal diff in O(Δ);
// the caller then resolves the transaction with exactly one of Commit or
// Discard.
type Txn struct {
	v *View

	pre        db.PositionSnapshot
	sinceEpoch uint64
	journal    *grid.Journal

	swaps    []routeSwap
	swapped  map[int32]bool
	netSwaps []netSwap
	done     bool

	// segs marks region boundaries in the journal's op log (sharded merge);
	// empty unless BeginSegment was called.
	segs []segMark
}

// segMark is one BeginSegment call: ops recorded at index >= start (and
// before the next mark) belong to tag.
type segMark struct {
	tag   int
	start int
}

// Segment is one tagged slice of the transaction's demand mutations, in
// execution order — the per-region demand journal of the sharded merge.
type Segment struct {
	Tag int
	Ops []grid.JournalOp
}

// routeSwap records one net's pre-transaction route (nil = was unrouted).
type routeSwap struct {
	nid int32
	old *global.Route
}

// netSwap records one net's pre-transaction cell-pin terminal list, captured
// by ApplyDelta when it rewires the net.
type netSwap struct {
	nid int32
	old []db.PinRef
}

// NetChange is one net rewiring in a DeltaOps batch: the net's complete new
// cell-pin terminal list (IO terminals are untouched).
type NetChange struct {
	Net  int32
	Pins []db.PinRef
}

// DeltaOps is a resolved ECO delta expressed in design IDs: a batch of cell
// moves plus net rewirings, applied transactionally by Txn.ApplyDelta.
// Structural edits (added/removed cells) cannot be expressed here — they
// change the ID space and force a design rebuild (see internal/eco).
type DeltaOps struct {
	Moves map[int32]geom.Point
	Nets  []NetChange
}

// Begin opens a write transaction over the view's committed state.
// sinceEpoch is the demand version observed when the enclosing read phases
// started (View.Version at iteration entry); Check uses it to prove no
// demand mutation anywhere in the iteration bypassed the transaction.
// At most one transaction can be open per grid (the demand journal enforces
// it).
func (v *View) Begin(sinceEpoch uint64) *Txn {
	t := &Txn{
		v:          v,
		pre:        v.d.Snapshot(),
		sinceEpoch: sinceEpoch,
		journal:    grid.NewJournal(),
		swapped:    map[int32]bool{},
	}
	v.g.AttachJournal(t.journal)
	return t
}

// MoveCells applies a group of cell moves atomically (all legality checks
// are db.MoveCells'); on error nothing moved.
func (t *Txn) MoveCells(moves map[int32]geom.Point) error {
	return t.v.d.MoveCells(moves)
}

// RerouteNet rips up and reroutes net nid against current demand,
// remembering the pre-transaction route the first time the net is touched.
func (t *Txn) RerouteNet(nid int32) {
	if !t.swapped[nid] {
		t.swapped[nid] = true
		t.swaps = append(t.swaps, routeSwap{nid: nid, old: t.v.r.Routes[nid]})
	}
	t.v.r.RerouteNet(nid)
}

// ApplyDelta applies a resolved ECO delta through the transaction: the cell
// moves as one atomic batch, then each net rewiring (pre-image captured for
// Discard), then a rip-up/reroute of every affected net — the union of the
// moved cells' nets and the rewired nets, in ascending net-ID order so the
// demand mutation sequence is deterministic. The whole batch is validated
// before anything mutates; on error the committed state is unchanged and the
// transaction remains open (the caller decides whether to Discard).
func (t *Txn) ApplyDelta(ops DeltaOps) error {
	d := t.v.d
	nets := append([]NetChange(nil), ops.Nets...)
	sort.Slice(nets, func(a, b int) bool { return nets[a].Net < nets[b].Net })
	for i, nc := range nets {
		if nc.Net < 0 || int(nc.Net) >= len(d.Nets) {
			return fmt.Errorf("view: delta rewires unknown net %d (have %d nets)", nc.Net, len(d.Nets))
		}
		if i > 0 && nets[i-1].Net == nc.Net {
			return fmt.Errorf("view: delta rewires net %d twice", nc.Net)
		}
		for _, pr := range nc.Pins {
			if pr.Cell < 0 || int(pr.Cell) >= len(d.Cells) {
				return fmt.Errorf("view: delta rewires net %d to unknown cell %d", nc.Net, pr.Cell)
			}
			if c := d.Cells[pr.Cell]; pr.Pin < 0 || int(pr.Pin) >= len(c.Macro.Pins) {
				return fmt.Errorf("view: delta rewires net %d to pin %d of cell %q (macro %q has %d pins)",
					nc.Net, pr.Pin, c.Name, c.Macro.Name, len(c.Macro.Pins))
			}
		}
		if len(nc.Pins)+len(d.Nets[nc.Net].IOs) < 2 {
			return fmt.Errorf("view: delta leaves net %d with %d terminals", nc.Net, len(nc.Pins)+len(d.Nets[nc.Net].IOs))
		}
	}
	for cid := range ops.Moves {
		if cid < 0 || int(cid) >= len(d.Cells) {
			return fmt.Errorf("view: delta moves unknown cell %d (have %d cells)", cid, len(d.Cells))
		}
	}
	// Affected nets are collected against pre-move connectivity; a rewiring
	// can only add nets that are themselves in the rewired set, so the union
	// below covers post-change connectivity too.
	affected := map[int32]bool{}
	for cid := range ops.Moves {
		for _, nid := range d.Cells[cid].Nets {
			affected[nid] = true
		}
	}
	if len(ops.Moves) > 0 {
		if err := t.MoveCells(ops.Moves); err != nil {
			return err
		}
	}
	for _, nc := range nets {
		old, err := d.ReconnectNet(nc.Net, nc.Pins)
		if err != nil {
			// Unreachable after the validation above; surface it rather than
			// guessing at partial-undo semantics.
			return fmt.Errorf("view: delta rewire failed after validation: %w", err)
		}
		t.netSwaps = append(t.netSwaps, netSwap{nid: nc.Net, old: old})
		affected[nc.Net] = true
	}
	nids := make([]int32, 0, len(affected))
	for nid := range affected {
		nids = append(nids, nid)
	}
	sort.Slice(nids, func(a, b int) bool { return nids[a] < nids[b] })
	for _, nid := range nids {
		t.RerouteNet(nid)
	}
	return nil
}

// RerouteNetTracked is RerouteNet reporting whether the reroute fell back
// to the maze router — the signal that its demand reads were not confined
// to the net's bounding box (see the sharded merge's conflict detection).
func (t *Txn) RerouteNetTracked(nid int32) (usedMaze bool) {
	if !t.swapped[nid] {
		t.swapped[nid] = true
		t.swaps = append(t.swaps, routeSwap{nid: nid, old: t.v.r.Routes[nid]})
	}
	return t.v.r.RerouteNetInfo(nid)
}

// BeginSegment starts a new tagged segment of the transaction's demand
// journal: every AddWire/AddVia from here to the next BeginSegment (or the
// transaction's end) is attributed to tag. The first call enables the
// journal's ordered op log (mutations before it are not attributed).
func (t *Txn) BeginSegment(tag int) {
	t.journal.EnableOps()
	t.segs = append(t.segs, segMark{tag: tag, start: len(t.journal.Ops)})
}

// Segments returns the tagged journal slices in execution order. The Ops
// slices alias the journal's log; callers must not mutate them.
func (t *Txn) Segments() []Segment {
	out := make([]Segment, len(t.segs))
	for i, m := range t.segs {
		end := len(t.journal.Ops)
		if i+1 < len(t.segs) {
			end = t.segs[i+1].start
		}
		out[i] = Segment{Tag: m.tag, Ops: t.journal.Ops[m.start:end]}
	}
	return out
}

// JournalStats exposes the transaction journal's size read-only: distinct
// wire and via edges touched, and the total mutation count — what the shard
// conflict tests assert against without reflection.
func (t *Txn) JournalStats() (wires, vias int, mutations uint64) {
	wires, vias = t.journal.Len()
	return wires, vias, t.journal.Mutations
}

// IntersectOps returns the demand edges two op sequences both touch —
// the cross-region demand-edge intersection the sharded merge's conflict
// detector and its fuzz referee are built on. Keys are reported in first-
// appearance order of a; wire and via edges are tracked separately.
func IntersectOps(a, b []grid.JournalOp) []grid.EdgeKey {
	type spaceKey struct {
		k   grid.EdgeKey
		via bool
	}
	inB := make(map[spaceKey]bool, len(b))
	for _, op := range b {
		inB[spaceKey{op.Key, op.Via}] = true
	}
	var out []grid.EdgeKey
	seen := map[spaceKey]bool{}
	for _, op := range a {
		sk := spaceKey{op.Key, op.Via}
		if inB[sk] && !seen[sk] {
			seen[sk] = true
			out = append(out, op.Key)
		}
	}
	return out
}

// Check verifies the transaction's invariants against its own diff, in
// O(Δ) instead of the full-grid drift scan it replaces:
//
//  1. epoch accounting — every demand mutation since sinceEpoch advanced
//     the epoch by one and was recorded in the journal, so a mutation that
//     bypassed the transaction (any phase of the iteration) shows up as an
//     epoch/journal mismatch;
//  2. the journalled per-edge demand deltas must equal the delta implied by
//     the route swaps (old route out, current route in) — the leak/double-
//     count check, now edge-exact rather than total-sum;
//  3. full placement legality (db.Validate), which also catches positions
//     corrupted outside the transaction.
func (t *Txn) Check() error {
	if got, want := t.v.g.Epoch(), t.sinceEpoch+t.journal.Mutations; got != want {
		return fmt.Errorf("grid demand epoch %d, want %d (+%d journalled mutations): demand mutated outside the transaction",
			got, t.sinceEpoch, t.journal.Mutations)
	}
	if err := t.checkDemandDiff(); err != nil {
		return err
	}
	if err := t.v.d.Validate(); err != nil {
		return fmt.Errorf("placement illegal: %w", err)
	}
	return nil
}

// checkDemandDiff compares the journalled demand deltas against the deltas
// the route swaps imply.
func (t *Txn) checkDemandDiff() error {
	g := t.v.g
	expWire := make(map[grid.EdgeKey]float64, len(t.journal.Wire))
	expVia := make(map[grid.EdgeKey]float64, len(t.journal.Vias))
	apply := func(rt *global.Route, sign float64) {
		if rt == nil {
			return
		}
		for _, w := range rt.Wires {
			expWire[g.WireKey(w.X, w.Y, w.L)] += sign
		}
		for _, vp := range rt.Vias {
			expVia[g.ViaKey(vp.X, vp.Y, vp.L)] += sign
		}
	}
	for _, sw := range t.swaps {
		apply(sw.old, -1)
		apply(t.v.r.Routes[sw.nid], +1)
	}
	if err := diffMaps("wire", t.journal.Wire, expWire); err != nil {
		return err
	}
	return diffMaps("via", t.journal.Vias, expVia)
}

// diffMaps compares journalled against expected deltas over the union of
// their keys, reporting the smallest mismatching key so the error message is
// deterministic.
func diffMaps(kind string, got, want map[grid.EdgeKey]float64) error {
	keys := make([]grid.EdgeKey, 0, len(got)+len(want))
	for k := range got {
		keys = append(keys, k)
	}
	for k := range want {
		if _, ok := got[k]; !ok {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a].L != keys[b].L {
			return keys[a].L < keys[b].L
		}
		return keys[a].I < keys[b].I
	})
	for _, k := range keys {
		if d := got[k] - want[k]; math.Abs(d) > 1e-6 {
			return fmt.Errorf("grid %s demand drift %+g at edge %v (journalled %g, routes imply %g)",
				kind, d, k, got[k], want[k])
		}
	}
	return nil
}

// Commit keeps the transaction's writes: the undo log is dropped and the
// demand journal detached. The transaction is finished.
func (t *Txn) Commit() {
	t.finish()
}

// Discard undoes the transaction: every touched net is ripped up and its
// pre-transaction route re-committed (restoring grid demand exactly), then
// all cell positions are restored from the pre-image. Nets are processed in
// ascending ID order so the demand mutation sequence is deterministic. The
// transaction is finished.
func (t *Txn) Discard() {
	t.finish()
	nids := make([]int32, 0, len(t.swaps))
	for _, sw := range t.swaps {
		nids = append(nids, sw.nid)
	}
	sort.Slice(nids, func(a, b int) bool { return nids[a] < nids[b] })
	old := make(map[int32]*global.Route, len(t.swaps))
	for _, sw := range t.swaps {
		old[sw.nid] = sw.old
	}
	r := t.v.r
	for _, nid := range nids {
		r.RipUp(nid)
		r.Commit(old[nid]) // Commit(nil) is a no-op: net was unrouted before
	}
	// Undo ApplyDelta rewirings (netlist truth) before placement truth; pin
	// lists are independent of demand accounting, so ordering against the
	// route restore above is immaterial.
	for i := len(t.netSwaps) - 1; i >= 0; i-- {
		ns := t.netSwaps[i]
		if _, err := t.v.d.ReconnectNet(ns.nid, ns.old); err != nil {
			return // pre-image was valid; only out-of-band corruption gets here
		}
	}
	if err := t.v.d.Restore(t.pre); err != nil {
		// Only possible if the cell count changed mid-transaction, which
		// nothing does; the caller's post-discard invariant check will
		// catch the inconsistency.
		return
	}
}

// finish detaches the journal exactly once; a second resolution of the
// same transaction is a programming error worth failing loudly on.
func (t *Txn) finish() {
	if t.done {
		panic("view: transaction resolved twice")
	}
	t.done = true
	t.v.g.DetachJournal()
}
