package view_test

import (
	"reflect"
	"sort"
	"sync"
	"testing"

	"github.com/crp-eda/crp/internal/db"
	"github.com/crp-eda/crp/internal/geom"
	"github.com/crp-eda/crp/internal/grid"
	"github.com/crp-eda/crp/internal/ispd"
	"github.com/crp-eda/crp/internal/route/global"
	"github.com/crp-eda/crp/internal/view"
)

// buildView generates a routed design and wraps it in a view, mirroring how
// flow.globalRoute constructs the live session.
func buildView(tb testing.TB, spec ispd.Spec) *view.View {
	tb.Helper()
	d, err := ispd.Generate(spec)
	if err != nil {
		tb.Fatal(err)
	}
	g := grid.New(d, grid.DefaultParams())
	r := global.New(d, g, global.DefaultConfig())
	r.RouteAll()
	return view.New(d, g, r)
}

func fixtureSpec() ispd.Spec {
	return ispd.Spec{
		Name: "view_fixture", Node: "n45", Cells: 120, Nets: 100,
		Utilisation: 0.88, Hotspots: 2, IOFraction: 0.03, Seed: 7,
	}
}

// swapMoves builds a batch-legal move set by pairing same-width movable
// cells within a row and swapping their positions — db.MoveCells accepts a
// swap because targets are checked with every mover lifted out.
func swapMoves(d *db.Design, maxPairs int) map[int32]geom.Point {
	type slot struct {
		row int32
		w   int
	}
	seen := map[slot]*db.Cell{}
	moves := map[int32]geom.Point{}
	pairs := 0
	for _, c := range d.Cells {
		if c.Fixed || pairs >= maxPairs {
			continue
		}
		k := slot{c.Row, c.Rect().W()}
		p, ok := seen[k]
		if !ok {
			seen[k] = c
			continue
		}
		if p.Pos == c.Pos {
			continue
		}
		moves[p.ID] = c.Pos
		moves[c.ID] = p.Pos
		pairs++
		delete(seen, k)
	}
	return moves
}

// affectedNets returns the sorted, deduplicated nets touching any mover.
func affectedNets(d *db.Design, moves map[int32]geom.Point) []int32 {
	set := map[int32]bool{}
	for id := range moves {
		for _, nid := range d.Cells[id].Nets {
			set[nid] = true
		}
	}
	nids := make([]int32, 0, len(set))
	for nid := range set {
		nids = append(nids, nid)
	}
	sort.Slice(nids, func(i, j int) bool { return nids[i] < nids[j] })
	return nids
}

// TestOverlayDiscardLeavesBaseUntouched pins the speculation layer's core
// property: staging and reading any number of hypothetical moves writes
// nothing to the base — state and grid epoch are byte-identical after
// Discard.
func TestOverlayDiscardLeavesBaseUntouched(t *testing.T) {
	v := buildView(t, fixtureSpec())
	st0 := v.Materialize()
	epoch0 := v.Version()

	ov := v.Overlay()
	d := v.Design()
	for i, c := range d.Cells {
		if i >= 40 {
			break
		}
		// Positions need not be legal: the overlay is a reading model, not
		// a placement change.
		ov.Stage(c.ID, geom.Point{X: c.Pos.X + 1000*(i%5), Y: c.Pos.Y + 500*(i%3)})
	}
	for _, nid := range ov.AffectedNets() {
		if pts := ov.NetTerminals(nid); len(pts) == 0 {
			t.Fatalf("net %d: no terminals", nid)
		}
	}
	for _, id := range ov.Staged() {
		_ = ov.Pos(id)
	}
	ov.Discard()

	if got := v.Version(); got != epoch0 {
		t.Fatalf("grid epoch moved %d -> %d: overlay touched the base", epoch0, got)
	}
	if st1 := v.Materialize(); !reflect.DeepEqual(st0, st1) {
		t.Fatal("base state changed across Overlay stage/Discard")
	}
}

// TestTxnDiscardRestoresBaseState checks the transaction undo path in
// isolation: moves plus reroutes followed by Discard leave positions,
// history, routes and every demand value identical to the pre-transaction
// state.
func TestTxnDiscardRestoresBaseState(t *testing.T) {
	v := buildView(t, fixtureSpec())
	d := v.Design()
	moves := swapMoves(d, 6)
	if len(moves) == 0 {
		t.Fatal("fixture yielded no swappable cells")
	}
	st0 := v.Materialize()

	txn := v.Begin(v.Version())
	if err := txn.MoveCells(moves); err != nil {
		t.Fatalf("applying swaps: %v", err)
	}
	for _, nid := range affectedNets(d, moves) {
		txn.RerouteNet(nid)
	}
	if err := txn.Check(); err != nil {
		t.Fatalf("healthy transaction failed Check: %v", err)
	}
	txn.Discard()

	if st1 := v.Materialize(); !reflect.DeepEqual(st0, st1) {
		t.Fatal("base state differs after Txn Discard")
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("design invalid after Discard: %v", err)
	}
}

// TestTxnDiscardMatchesManualRollback replays the pre-view rollback recipe
// (full position snapshot, manual reroute with old-route capture, sorted
// rip-up/re-commit, position restore) against Txn Begin/Discard on crp_test1
// — the two paths must land on byte-identical state, which is what made the
// refactor safe to land under the bit-identity suites.
func TestTxnDiscardMatchesManualRollback(t *testing.T) {
	spec := ispd.Suite(0.02)[0] // crp_test1
	vOld := buildView(t, spec)
	vNew := buildView(t, spec)
	if !reflect.DeepEqual(vOld.Materialize(), vNew.Materialize()) {
		t.Fatal("identical specs generated different sessions")
	}
	moves := swapMoves(vOld.Design(), 8)
	if len(moves) == 0 {
		t.Fatal("crp_test1 yielded no swappable cells")
	}
	nids := affectedNets(vOld.Design(), moves)

	// Old path: the hand-rolled snapshot/rollback crp.Engine used before the
	// view layer owned it.
	dOld, rOld := vOld.Design(), vOld.Router()
	pre := dOld.Snapshot()
	oldRoutes := map[int32]*global.Route{}
	if err := dOld.MoveCells(moves); err != nil {
		t.Fatalf("old path moves: %v", err)
	}
	for _, nid := range nids {
		if _, ok := oldRoutes[nid]; !ok {
			oldRoutes[nid] = rOld.Routes[nid]
		}
		rOld.RerouteNet(nid)
	}
	for _, nid := range nids { // already ascending
		rOld.RipUp(nid)
		rOld.Commit(oldRoutes[nid]) // Commit(nil) is a no-op
	}
	if err := dOld.Restore(pre); err != nil {
		t.Fatalf("old path restore: %v", err)
	}

	// New path: the same mutation through one transaction.
	txn := vNew.Begin(vNew.Version())
	if err := txn.MoveCells(moves); err != nil {
		t.Fatalf("new path moves: %v", err)
	}
	for _, nid := range nids {
		txn.RerouteNet(nid)
	}
	txn.Discard()

	if !reflect.DeepEqual(vOld.Materialize(), vNew.Materialize()) {
		t.Fatal("manual rollback and Txn Discard diverged")
	}
}

// TestTxnCommitKeepsMutations is the commit-side complement: committed moves
// and reroutes survive, the design stays legal, and the epoch advanced.
func TestTxnCommitKeepsMutations(t *testing.T) {
	v := buildView(t, fixtureSpec())
	d := v.Design()
	moves := swapMoves(d, 4)
	if len(moves) == 0 {
		t.Fatal("fixture yielded no swappable cells")
	}
	epoch0 := v.Version()

	txn := v.Begin(epoch0)
	if err := txn.MoveCells(moves); err != nil {
		t.Fatalf("applying swaps: %v", err)
	}
	nids := affectedNets(d, moves)
	for _, nid := range nids {
		txn.RerouteNet(nid)
	}
	if err := txn.Check(); err != nil {
		t.Fatalf("healthy transaction failed Check: %v", err)
	}
	txn.Commit()

	for id, want := range moves {
		if got := v.Pos(id); got != want {
			t.Errorf("cell %d at %v after commit, want %v", id, got, want)
		}
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("design invalid after Commit: %v", err)
	}
	if v.Version() == epoch0 && len(nids) > 0 {
		t.Error("reroutes committed but grid epoch never advanced")
	}
}

// fuzzBase is the shared fuzz fixture: built once, reset to st0 after every
// execution so each input starts from the same state.
var fuzzBase struct {
	once sync.Once
	v    *view.View
	st0  view.State
}

// FuzzOverlayCommit drives random mutation batches through the overlay and
// transaction layers and checks the layering contract: overlay reads see
// staged positions, Check always passes on a transaction that did all its
// mutation through the Txn API, Discard restores the base byte-identically,
// and Commit leaves a legal design.
func FuzzOverlayCommit(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6}, true)
	f.Add([]byte{0xff, 0x00, 0x80, 0x40}, false)
	f.Add([]byte{}, true)
	f.Fuzz(func(t *testing.T, data []byte, commit bool) {
		fuzzBase.once.Do(func() {
			spec := fixtureSpec()
			spec.Name, spec.Cells, spec.Nets, spec.Seed = "view_fuzz", 80, 60, 11
			fuzzBase.v = buildView(t, spec)
			fuzzBase.st0 = fuzzBase.v.Materialize()
		})
		v := fuzzBase.v
		d := v.Design()
		n := len(d.Cells)

		// Decode the input into a move batch: pairs of cell indices whose
		// positions we try to swap. Illegal batches are rejected wholesale
		// by MoveCells and contribute only reroutes.
		moves := map[int32]geom.Point{}
		for i := 0; i+1 < len(data) && len(moves) < 16; i += 2 {
			a := d.Cells[int(data[i])%n]
			b := d.Cells[int(data[i+1])%n]
			if a.ID == b.ID || a.Fixed || b.Fixed {
				continue
			}
			if _, dup := moves[a.ID]; dup {
				continue
			}
			if _, dup := moves[b.ID]; dup {
				continue
			}
			moves[a.ID] = b.Pos
			moves[b.ID] = a.Pos
		}

		// Speculation layer first: staged reads must see the hypothetical
		// positions without touching the base.
		ov := v.Overlay()
		ov.StageSorted(moves)
		for id, want := range moves {
			if got := ov.Pos(id); got != want {
				t.Fatalf("overlay Pos(%d) = %v, staged %v", id, got, want)
			}
		}
		ov.Discard()

		txn := v.Begin(v.Version())
		applied := txn.MoveCells(moves) == nil
		for i := range data {
			if i >= 8 {
				break
			}
			txn.RerouteNet(int32(int(data[i]) % len(d.Nets)))
		}
		if err := txn.Check(); err != nil {
			t.Fatalf("transaction-only mutation failed Check (applied=%v): %v", applied, err)
		}
		if commit {
			txn.Commit()
			if err := d.Validate(); err != nil {
				t.Fatalf("design invalid after Commit: %v", err)
			}
			if err := v.Restore(fuzzBase.st0); err != nil {
				t.Fatalf("resetting fixture: %v", err)
			}
		} else {
			txn.Discard()
			if st := v.Materialize(); !reflect.DeepEqual(fuzzBase.st0, st) {
				t.Fatal("base state differs after Discard")
			}
		}
	})
}
