package view

import (
	"fmt"

	"github.com/crp-eda/crp/internal/db"
	"github.com/crp-eda/crp/internal/geom"
	"github.com/crp-eda/crp/internal/grid"
	"github.com/crp-eda/crp/internal/route/global"
)

// State is the materialized mutable state of a view: everything the CR&P
// loop can change, in one exportable bundle — cell positions and
// orientations, the Algorithm 1 history sets, the per-net routes, and the
// grid's demand arrays. It is the single unit checkpoints serialize and
// resumes rebuild; the per-store export/import APIs (db.ExportPositions,
// grid.ExportDemand, global.AdoptRoutes, …) remain as the thin primitives
// underneath.
type State struct {
	Pos      []geom.Point
	Orient   []db.Orient
	Critical []bool
	Moved    []bool
	// Routes is indexed by net ID; nil entries are unrouted nets.
	Routes []*global.Route
	Demand grid.DemandState
}

// Materialize exports the view's mutable state. Positions, history bits and
// demand arrays are deep copies; routes are a copied slice of the live
// (immutable once committed) route values.
func (v *View) Materialize() State {
	pos, orient := v.d.ExportPositions()
	crit, moved := v.d.ExportHistory()
	return State{
		Pos:      pos,
		Orient:   orient,
		Critical: crit,
		Moved:    moved,
		Routes:   append([]*global.Route(nil), v.r.Routes...),
		Demand:   v.g.ExportDemand(),
	}
}

// Restore overwrites the view's mutable state in place with a previously
// materialized State. The stores must be the ones the state was taken from
// (same design, same grid dimensions); no transaction may be open.
func (v *View) Restore(st State) error {
	if err := v.d.ImportPositions(st.Pos, st.Orient); err != nil {
		return fmt.Errorf("view: restoring placement: %w", err)
	}
	if err := v.d.ImportHistory(st.Critical, st.Moved); err != nil {
		return fmt.Errorf("view: restoring history: %w", err)
	}
	if err := v.g.RestoreDemand(st.Demand); err != nil {
		return fmt.Errorf("view: restoring grid demand: %w", err)
	}
	if err := v.r.AdoptRoutes(st.Routes); err != nil {
		return fmt.Errorf("view: restoring routes: %w", err)
	}
	return nil
}

// Rebuild constructs a fresh grid, router and view over d and restores a
// materialized State into them — the resume path.
//
// Ordering matters: the grid is constructed only after positions are
// restored, because its construction-time demand seeding reads pin
// positions — yet that fresh seeding reflects the *current* placement while
// the recorded demand was seeded from the *initial* one, so the recorded
// demand arrays then overwrite the fresh grid's verbatim. That exact
// sequence is what makes a rebuilt session bit-identical to the one that
// was materialized.
func Rebuild(d *db.Design, gp grid.Params, gcfg global.Config, st State) (*View, error) {
	if err := d.ImportPositions(st.Pos, st.Orient); err != nil {
		return nil, fmt.Errorf("view: restoring placement: %w", err)
	}
	if err := d.ImportHistory(st.Critical, st.Moved); err != nil {
		return nil, fmt.Errorf("view: restoring history: %w", err)
	}
	g := grid.New(d, gp)
	if err := g.RestoreDemand(st.Demand); err != nil {
		return nil, fmt.Errorf("view: restoring grid demand: %w", err)
	}
	r := global.New(d, g, gcfg)
	if err := r.AdoptRoutes(st.Routes); err != nil {
		return nil, fmt.Errorf("view: restoring routes: %w", err)
	}
	return New(d, g, r), nil
}
