// Package view layers copy-on-write access over the three stores that hold
// a design's mutable state — db.Design (positions, orientations, history),
// grid.Grid (routing demand) and the global router's route set — so that
// every consumer of "state I might throw away" goes through one kernel
// instead of hand-rolling its own scratch, snapshot or export mechanism.
//
// The layering, bottom to top:
//
//	base       View        — read-only facade over db + grid + routes
//	speculate  Overlay     — per-worker hypothetical cell moves (Algorithm 3
//	                         prices candidates "with all other cells fixed");
//	                         never touches the base, O(staged cells) to reset
//	transact   Txn         — one iteration's write set: moves, route swaps
//	                         and a demand journal, with Commit/Discard and an
//	                         O(Δ) diff-based invariant check
//	persist    State       — the materialized mutable state, the unit a
//	                         checkpoint serializes and a resume rebuilds
//
// Who owns which layer: the CR&P engine owns one Overlay per ECC worker and
// one Txn per iteration; the flow owns Materialize/Rebuild at checkpoint
// boundaries. The base stores stay authoritative — a View holds no state of
// its own — so read paths cost exactly what direct access cost before.
//
// Commit/discard rules: an Overlay is discarded by Reset (it never wrote
// anything); a Txn must end in exactly one of Commit (keep the writes, drop
// the undo log) or Discard (restore routes, demand and positions to the
// Begin state). Both detach the demand journal, so at most one Txn can be
// open per grid at a time.
package view

import (
	"github.com/crp-eda/crp/internal/db"
	"github.com/crp-eda/crp/internal/geom"
	"github.com/crp-eda/crp/internal/grid"
	"github.com/crp-eda/crp/internal/route/global"
)

// View is the base layer: a read facade over the design, the routing grid
// and the committed route set. It is stateless and cheap to share; overlays
// and transactions are created from it.
type View struct {
	d *db.Design
	g *grid.Grid
	r *global.Router
}

// New builds a view over live stores. The router must be routing on g and
// both must reference d.
func New(d *db.Design, g *grid.Grid, r *global.Router) *View {
	return &View{d: d, g: g, r: r}
}

// Design returns the underlying design (read access; mutate only through a
// Txn).
func (v *View) Design() *db.Design { return v.d }

// Grid returns the underlying routing grid.
func (v *View) Grid() *grid.Grid { return v.g }

// Router returns the underlying global router.
func (v *View) Router() *global.Router { return v.r }

// Pos returns the committed position of cell id.
func (v *View) Pos(id int32) geom.Point { return v.d.Cells[id].Pos }

// Orient returns the committed orientation of cell id.
func (v *View) Orient(id int32) db.Orient { return v.d.Cells[id].Orient }

// Demand returns the committed routing demand D_e (Eq. 9) of the edge
// leaving GCell (x,y) on layer l.
func (v *View) Demand(x, y, l int) float64 { return v.g.Demand(x, y, l) }

// Route returns the committed route of net nid (nil when unrouted).
func (v *View) Route(nid int32) *global.Route { return v.r.Routes[nid] }

// NetCost returns the live routed cost of net nid (memoised against the
// demand version; see route/global's estimation caches).
func (v *View) NetCost(nid int32) float64 { return v.r.NetCost(nid) }

// NetPins returns the pin references of net nid; resolve them against the
// base with Pos/Orient, or against staged moves with Overlay.NetTerminals.
func (v *View) NetPins(nid int32) []db.PinRef { return v.d.Nets[nid].Pins }

// Version returns the state version of the view: the grid's demand epoch.
// It advances on every committed demand mutation, so any value derived from
// demand (edge costs, net costs, candidate prices) is valid exactly while
// Version is unchanged — the key the estimation caches use. Overlays never
// advance it; a Txn advances it once per route-swap mutation.
func (v *View) Version() uint64 { return v.g.Epoch() }

// Overlay returns a new, empty speculation overlay on this view. Each ECC
// worker keeps its own; overlays are not safe for concurrent use, but
// distinct overlays over one view are.
func (v *View) Overlay() *Overlay { return &Overlay{v: v} }

// Overlays forks n independent overlays over this view — the per-worker
// set the engine hands its estimation fan-out and a sharded iteration hands
// its region pipelines. Distinct overlays are safe to use concurrently.
func (v *View) Overlays(n int) []*Overlay {
	out := make([]*Overlay, n)
	for i := range out {
		out[i] = v.Overlay()
	}
	return out
}
