package view_test

import (
	"reflect"
	"sync"
	"testing"

	"github.com/crp-eda/crp/internal/grid"
	"github.com/crp-eda/crp/internal/view"
)

// fuzzMergeBase is the shared routed grid the merge fuzzer mutates and
// restores; fuzz inputs run sequentially within a worker process, so one
// fixture with ExportDemand/RestoreDemand bracketing is race-free (the same
// pattern FuzzOverlayCommit uses for the whole view).
var fuzzMergeBase struct {
	once sync.Once
	g    *grid.Grid
	st0  grid.DemandState
}

// decodeOps turns fuzz bytes into a demand-mutation sequence: each 3-byte
// chunk is one AddWire/AddVia with a positive delta, optionally followed by
// its exact cancellation. Cancellation pairs matter: they leave no net
// demand change for a full-grid diff to see, but the journal still counts
// the edge as touched — exactly the conservative case that separates the
// O(Δ) conflict detector from the brute-force referee.
type fuzzOp struct {
	x, y, l int
	via     bool
	delta   float64
}

func decodeOps(g *grid.Grid, data []byte) []fuzzOp {
	var ops []fuzzOp
	for i := 0; i+2 < len(data) && len(ops) < 24; i += 3 {
		op := fuzzOp{
			x:     int(data[i]) % g.NX,
			y:     int(data[i+1]) % g.NY,
			via:   data[i+2]&1 != 0,
			delta: 0.5 * float64(1+(data[i+2]>>4)%4),
		}
		if op.via {
			op.l = int(data[i+2]>>1) % (g.NL - 1)
		} else {
			op.l = int(data[i+2]>>1) % g.NL
		}
		ops = append(ops, op)
		if data[i+2]&8 != 0 {
			neg := op
			neg.delta = -op.delta
			ops = append(ops, neg)
		}
	}
	return ops
}

// applyOps runs the sequence under a fresh op-recording journal and returns
// the recorded log — the same artifact the sharded merge segments and
// intersects.
func applyOps(t *testing.T, g *grid.Grid, ops []fuzzOp) []grid.JournalOp {
	t.Helper()
	j := grid.NewJournal()
	j.EnableOps()
	g.AttachJournal(j)
	for i, op := range ops {
		if op.via {
			g.AddVia(op.x, op.y, op.l, op.delta)
		} else {
			g.AddWire(op.x, op.y, op.l, op.delta)
		}
		if n, ok := g.JournalMutations(); !ok || n != uint64(i+1) {
			t.Fatalf("JournalMutations = (%d, %v) after %d mutations", n, ok, i+1)
		}
	}
	g.DetachJournal()
	if _, ok := g.JournalMutations(); ok {
		t.Fatal("JournalMutations still reports a journal after detach")
	}
	return j.Ops
}

// touched returns the edges whose demand differs between two snapshots —
// the brute-force full-grid diff the journal intersection is checked
// against. Wire and via edges are keyed in separate maps, mirroring the
// journal's two spaces.
func touched(g *grid.Grid, a, b grid.DemandState) (wire, vias map[grid.EdgeKey]bool) {
	wire, vias = map[grid.EdgeKey]bool{}, map[grid.EdgeKey]bool{}
	for l := range a.Wire {
		for i := range a.Wire[l] {
			if a.Wire[l][i] != b.Wire[l][i] {
				wire[grid.EdgeKey{L: int32(l), I: int32(i)}] = true
			}
		}
	}
	for l := range a.Vias {
		for i := range a.Vias[l] {
			if a.Vias[l][i] != b.Vias[l][i] {
				vias[grid.EdgeKey{L: int32(l), I: int32(i)}] = true
			}
		}
	}
	return wire, vias
}

// FuzzShardMerge cross-checks the sharded merge's O(Δ) journal conflict
// detector against ground truth on a real grid:
//
//  1. soundness — every edge a brute-force full-grid diff proves both
//     sequences net-changed must be reported by IntersectOps (the detector
//     may over-report cancelled writes, never under-report);
//  2. commutation — when IntersectOps finds no shared edge, applying the
//     two sequences in either order must leave bitwise-identical demand,
//     which is the exact property the speculative merge relies on when it
//     declares two regions conflict-free.
func FuzzShardMerge(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6}, []byte{7, 8, 9})
	f.Add([]byte{0, 0, 0}, []byte{0, 0, 0})
	f.Add([]byte{10, 20, 0x1f, 30, 40, 0x08}, []byte{10, 20, 0x1f})
	f.Add([]byte{}, []byte{5, 5, 2})
	f.Fuzz(func(t *testing.T, rawA, rawB []byte) {
		fuzzMergeBase.once.Do(func() {
			spec := fixtureSpec()
			spec.Name, spec.Cells, spec.Nets, spec.Seed = "merge_fuzz", 80, 60, 13
			v := buildView(t, spec)
			fuzzMergeBase.g = v.Grid()
			fuzzMergeBase.st0 = fuzzMergeBase.g.ExportDemand()
		})
		g, st0 := fuzzMergeBase.g, fuzzMergeBase.st0
		restore := func() {
			if err := g.RestoreDemand(st0); err != nil {
				t.Fatalf("restoring fixture demand: %v", err)
			}
		}
		seqA := decodeOps(g, rawA)
		seqB := decodeOps(g, rawB)

		opsA := applyOps(t, g, seqA)
		stA := g.ExportDemand()
		restore()
		opsB := applyOps(t, g, seqB)
		stB := g.ExportDemand()
		restore()

		applyOps(t, g, seqA)
		applyOps(t, g, seqB)
		stAB := g.ExportDemand()
		restore()
		applyOps(t, g, seqB)
		applyOps(t, g, seqA)
		stBA := g.ExportDemand()
		restore()

		conflicts := map[grid.EdgeKey]bool{}
		for _, k := range view.IntersectOps(opsA, opsB) {
			conflicts[k] = true
		}

		wireA, viaA := touched(g, stA, st0)
		wireB, viaB := touched(g, stB, st0)
		for k := range wireA {
			if wireB[k] && !conflicts[k] {
				t.Fatalf("wire edge %v net-changed by both sequences but missing from IntersectOps", k)
			}
		}
		for k := range viaA {
			if viaB[k] && !conflicts[k] {
				t.Fatalf("via edge %v net-changed by both sequences but missing from IntersectOps", k)
			}
		}

		if len(conflicts) == 0 && !reflect.DeepEqual(stAB, stBA) {
			t.Fatal("IntersectOps reported no shared edges, but the sequences do not commute bitwise")
		}
	})
}
