package view

import (
	"sort"

	"github.com/crp-eda/crp/internal/db"
	"github.com/crp-eda/crp/internal/geom"
)

// Overlay is the speculation layer: a set of hypothetical cell moves staged
// over the base view, with every other cell fixed — exactly the reading
// model of Algorithm 3, which prices each candidate as if its moves were
// applied. Staging writes nothing to the base; Reset (or Discard) drops the
// overlay in O(staged cells).
//
// Staged moves and the per-net terminal buffers live in reusable slices
// with linear scans — move counts are tiny (a critical cell plus at most a
// few conflicts), so slices beat maps on both allocation and lookup, which
// is what keeps the ECC fast path allocation-lean (see
// BenchmarkECCEstimateCosts).
//
// Iteration order is deterministic and significant: AffectedNets yields
// nets in discovery order over the staged cells, and per-net costs are
// summed in that order — float addition is not associative, so the staging
// order (critical cell first, conflicts in ascending ID order via
// StageSorted) is part of the bit-identity contract.
type Overlay struct {
	v *View

	ids    []int32      // staged cells, in staging order
	pos    []geom.Point // parallel to ids: hypothetical position
	orient []db.Orient  // parallel to ids: orientation at that position

	nets []int32      // AffectedNets result buffer
	conf []int32      // StageSorted key buffer
	pts  []geom.Point // NetTerminals result buffer
}

// Reset drops every staged move, keeping the buffers for reuse.
func (o *Overlay) Reset() {
	o.ids = o.ids[:0]
	o.pos = o.pos[:0]
	o.orient = o.orient[:0]
}

// Discard is Reset under the name the layering contract uses: an overlay
// never wrote to the base, so discarding it is free.
func (o *Overlay) Discard() { o.Reset() }

// Stage records the hypothetical move of cell id to p. The orientation is
// resolved once per staged cell: the row at p's height dictates it, falling
// back to the cell's committed orientation off-row (matching how a real
// move through db.MoveCells would orient the cell).
func (o *Overlay) Stage(id int32, p geom.Point) {
	d := o.v.d
	orient := d.Cells[id].Orient
	if row, ok := d.RowAt(p.Y); ok {
		orient = row.Orient
	}
	o.ids = append(o.ids, id)
	o.pos = append(o.pos, p)
	o.orient = append(o.orient, orient)
}

// StageSorted stages every move in the map in ascending cell-ID order —
// the deterministic order the candidate cost sums depend on.
func (o *Overlay) StageSorted(moves map[int32]geom.Point) {
	o.conf = o.conf[:0]
	for id := range moves {
		o.conf = append(o.conf, id)
	}
	sort.Slice(o.conf, func(a, b int) bool { return o.conf[a] < o.conf[b] })
	for _, id := range o.conf {
		o.Stage(id, moves[id])
	}
}

// Staged returns the staged cell IDs in staging order. The slice is owned
// by the overlay and valid until the next Stage/Reset.
func (o *Overlay) Staged() []int32 { return o.ids }

// Pos returns the cell's position as seen through the overlay: the staged
// position if the cell is staged, the base position otherwise.
func (o *Overlay) Pos(id int32) geom.Point {
	for k, sid := range o.ids {
		if sid == id {
			return o.pos[k]
		}
	}
	return o.v.Pos(id)
}

// AffectedNets returns the nets incident to any staged cell, each exactly
// once, in discovery order (staged order, then each cell's net order) —
// the order Algorithm 3 sums candidate costs in. The slice is owned by the
// overlay and valid until the next call.
func (o *Overlay) AffectedNets() []int32 {
	d := o.v.d
	o.nets = o.nets[:0]
	for _, id := range o.ids {
		for _, nid := range d.Cells[id].Nets {
			dup := false
			for _, sn := range o.nets {
				if sn == nid {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
			o.nets = append(o.nets, nid)
		}
	}
	return o.nets
}

// NetTerminals returns the terminal points of net nid as seen through the
// overlay: pins of staged cells at their staged position and orientation,
// all other pins at their committed position, then the net's IO terminals.
// The slice is owned by the overlay and valid until the next call.
func (o *Overlay) NetTerminals(nid int32) []geom.Point {
	d := o.v.d
	n := d.Nets[nid]
	pts := o.pts[:0]
	for _, pr := range n.Pins {
		c := d.Cells[pr.Cell]
		moved := false
		for k, id := range o.ids {
			if id == pr.Cell {
				pts = append(pts, d.PinPositionAt(c, pr.Pin, o.pos[k], o.orient[k]))
				moved = true
				break
			}
		}
		if !moved {
			pts = append(pts, d.PinPosition(c, pr.Pin))
		}
	}
	for _, io := range n.IOs {
		pts = append(pts, io.Pos)
	}
	o.pts = pts
	return pts
}
