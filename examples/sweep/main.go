// Iteration sweep: the paper evaluates CR&P at k=1 and k=10 (Table III)
// and argues the runtime grows by a constant per iteration (Fig. 2). This
// example sweeps k over a circuit and prints the via/wirelength improvement
// and runtime series, reproducing both claims on one plot-ready table. It
// also runs the two ablations DESIGN.md calls out — the congestion-blind
// cost (the [18] cost inside CR&P) and unprioritised cell selection — at
// the final k, quantifying what each design choice buys.
//
//	go run ./examples/sweep
package main

import (
	"context"
	"fmt"
	"log"

	"github.com/crp-eda/crp/internal/crp"
	"github.com/crp-eda/crp/internal/eval"
	"github.com/crp-eda/crp/internal/flow"
	"github.com/crp-eda/crp/internal/ispd"
)

func main() {
	spec := ispd.Spec{
		Name:        "sweep",
		Node:        "n32",
		Cells:       800,
		Nets:        900,
		Utilisation: 0.90,
		Hotspots:    3,
		Seed:        11,
	}
	cfg := flow.DefaultConfig()

	d, err := ispd.Generate(spec)
	if err != nil {
		log.Fatal(err)
	}
	base := flow.RunBaseline(context.Background(), d, cfg)
	fmt.Printf("baseline: %v (%.2fs)\n\n", base.Metrics, base.Timings.Total.Seconds())

	fmt.Printf("%4s %10s %10s %10s %8s\n", "k", "viaImp%", "wlImp%", "runtime_s", "moved")
	for _, k := range []int{1, 2, 4, 6, 8, 10} {
		dk, err := ispd.Generate(spec)
		if err != nil {
			log.Fatal(err)
		}
		res := flow.RunCRP(context.Background(), dk, k, cfg)
		imp := eval.Compare(base.Metrics, res.Metrics)
		moved := 0
		for _, it := range res.CRPStats.Iterations {
			moved += it.MovedCells
		}
		fmt.Printf("%4d %10.2f %10.2f %10.2f %8d\n",
			k, imp.ViasPct, imp.WirelengthPct, res.Timings.Total.Seconds(), moved)
	}

	fmt.Println("\nablations at k=6:")
	run := func(label string, mutate func(*crp.Config)) {
		dk, err := ispd.Generate(spec)
		if err != nil {
			log.Fatal(err)
		}
		c := cfg
		mutate(&c.CRP)
		res := flow.RunCRP(context.Background(), dk, 6, c)
		imp := eval.Compare(base.Metrics, res.Metrics)
		fmt.Printf("  %-28s via %6.2f%%  wl %6.2f%%\n", label, imp.ViasPct, imp.WirelengthPct)
	}
	run("full CR&P (paper)", func(*crp.Config) {})
	run("length-only cost ([18]-style)", func(c *crp.Config) { c.CostMode = crp.LengthOnly })
	run("no criticality priority", func(c *crp.Config) { c.NoPriority = true })
}
