// Congestion relief: the scenario the paper's introduction motivates. A
// circuit with deliberate routing hot spots is globally routed; CR&P then
// iteratively labels the cells whose nets cross the congested edges, moves
// them through the ILP legalizer, and reroutes. The example prints the
// GCell-grid overflow statistics and the hottest-edge profile before and
// after, showing the congestion penalty of Eq. 10 steering cells out of
// the hot region.
//
//	go run ./examples/congestion
package main

import (
	"context"
	"fmt"
	"log"

	"github.com/crp-eda/crp/internal/crp"
	"github.com/crp-eda/crp/internal/grid"
	"github.com/crp-eda/crp/internal/ispd"
	"github.com/crp-eda/crp/internal/route/global"
)

func main() {
	// A dense circuit with strong hot spots and blockages funnelling the
	// routing into narrow channels.
	d, err := ispd.Generate(ispd.Spec{
		Name:        "hotspot",
		Node:        "n45",
		Cells:       900,
		Nets:        1100,
		Utilisation: 0.90,
		Hotspots:    4,
		Obstacles:   2,
		Seed:        7,
	})
	if err != nil {
		log.Fatal(err)
	}

	g := grid.New(d, grid.DefaultParams())
	r := global.New(d, g, global.DefaultConfig())
	gst := r.RouteAll()
	fmt.Printf("initial global route: %d nets (%d pattern, %d maze), %d RRR passes\n",
		gst.RoutedNets, gst.PatternRoutes, gst.MazeRoutes, gst.RRRPasses)

	before := g.Overflow()
	fmt.Printf("before CR&P: %d overflowed edges, total overflow %.1f, worst %.1f, route cost %.0f\n",
		before.OverflowedEdges, before.TotalOverflow, before.MaxOverflow, r.TotalCost())
	printHottest(g, 5)

	cfg := crp.DefaultConfig()
	cfg.Iterations = 6
	engine := crp.New(d, g, r, cfg)
	res := engine.Run(context.Background())

	after := g.Overflow()
	fmt.Printf("\nafter %d CR&P iterations (%d cells moved): %d overflowed edges, total overflow %.1f, route cost %.0f\n",
		cfg.Iterations, res.TotalMoved, after.OverflowedEdges, after.TotalOverflow, r.TotalCost())
	printHottest(g, 5)

	fmt.Println("\nper-iteration effect:")
	for i, it := range res.Iterations {
		fmt.Printf("  k=%d: %d critical, %d candidates, %d moved, %d nets rerouted (est. cost %.1f -> %.1f)\n",
			i+1, it.Criticals, it.Candidates, it.MovedCells, it.ReroutedNets, it.EstBefore, it.EstAfter)
	}
	if err := d.Validate(); err != nil {
		log.Fatalf("placement became illegal: %v", err)
	}
	fmt.Println("\nplacement verified legal after all moves")
}

// printHottest lists the most congested planar edges.
func printHottest(g *grid.Grid, n int) {
	type hot struct {
		x, y, l int
		ratio   float64
	}
	var hots []hot
	for l := 1; l < g.NL; l++ {
		for y := 0; y < g.NY; y++ {
			for x := 0; x < g.NX; x++ {
				if ratio := g.EdgeCongestion(x, y, l); ratio > 0 {
					hots = append(hots, hot{x, y, l, ratio})
				}
			}
		}
	}
	for i := 0; i < len(hots); i++ {
		for j := i + 1; j < len(hots); j++ {
			if hots[j].ratio > hots[i].ratio {
				hots[i], hots[j] = hots[j], hots[i]
			}
		}
		if i >= n-1 {
			break
		}
	}
	fmt.Printf("hottest edges:")
	for i := 0; i < min(n, len(hots)); i++ {
		h := hots[i]
		fmt.Printf("  (%d,%d,m%d)=%.2f", h.x, h.y, h.l+1, h.ratio)
	}
	fmt.Println()
}
