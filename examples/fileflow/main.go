// File-driven flow: the framework exactly as Fig. 1 presents it — LEF and
// DEF files in, improved DEF and route-guide files out. The example writes
// a benchmark to disk, re-reads it through the LEF/DEF parsers (proving the
// file interface is lossless), runs the CR&P flow, and emits the outputs a
// detailed router like TritonRoute would consume.
//
//	go run ./examples/fileflow
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"github.com/crp-eda/crp/internal/flow"
	"github.com/crp-eda/crp/internal/ispd"
	"github.com/crp-eda/crp/internal/lefdef"
)

func main() {
	dir, err := os.MkdirTemp("", "crp-fileflow-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// 1. Produce the input files, as the contest organisers would.
	src, err := ispd.Generate(ispd.Spec{
		Name: "fileflow", Node: "n45", Cells: 400, Nets: 350,
		Utilisation: 0.88, Hotspots: 2, IOFraction: 0.05, Seed: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	lefPath := filepath.Join(dir, "fileflow.lef")
	defPath := filepath.Join(dir, "fileflow.def")
	must(writeTo(lefPath, func(f *os.File) error { return lefdef.WriteLEF(f, src.Tech, src.Macros) }))
	must(writeTo(defPath, func(f *os.File) error { return lefdef.WriteDEF(f, src) }))
	fmt.Printf("inputs : %s, %s\n", lefPath, defPath)

	// 2. Load them back — the flow only sees the files from here on.
	lf, err := os.Open(lefPath)
	must(err)
	t, macros, err := lefdef.ParseLEF(lf)
	lf.Close()
	must(err)
	df, err := os.Open(defPath)
	must(err)
	d, err := lefdef.ParseDEF(df, t, macros)
	df.Close()
	must(err)
	if d.TotalHPWL() != src.TotalHPWL() {
		log.Fatalf("file round trip lost geometry: HPWL %d != %d", d.TotalHPWL(), src.TotalHPWL())
	}
	fmt.Printf("parsed : %d cells, %d nets — HPWL matches the source exactly\n",
		len(d.Cells), len(d.Nets))

	// 3. Run the flow and write the Fig. 1 outputs.
	outDEF, err := os.Create(filepath.Join(dir, "fileflow_crp.def"))
	must(err)
	outGuide, err := os.Create(filepath.Join(dir, "fileflow_crp.guide"))
	must(err)
	res, err := flow.RunCRPWithOutputs(context.Background(), d, 5, flow.DefaultConfig(), outDEF, outGuide)
	must(err)
	must(outDEF.Close())
	must(outGuide.Close())

	fmt.Printf("result : %v\n", res.Metrics)
	for _, name := range []string{"fileflow_crp.def", "fileflow_crp.guide"} {
		fi, err := os.Stat(filepath.Join(dir, name))
		must(err)
		fmt.Printf("output : %s (%d bytes)\n", name, fi.Size())
	}

	// 4. The output DEF is itself parseable — a downstream tool could
	// pick it up directly.
	of, err := os.Open(filepath.Join(dir, "fileflow_crp.def"))
	must(err)
	d2, err := lefdef.ParseDEF(of, t, macros)
	of.Close()
	must(err)
	if err := d2.Validate(); err != nil {
		log.Fatalf("output DEF not legal: %v", err)
	}
	fmt.Println("verify : output DEF parses and the placement is legal")
}

func writeTo(path string, write func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
