// Quickstart: generate a small benchmark circuit, run the baseline flow
// (global route → detailed route) and the CR&P flow (global route → CR&P
// co-operation → detailed route), and compare the detailed-routing metrics
// the paper reports in Table III.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"github.com/crp-eda/crp/internal/eval"
	"github.com/crp-eda/crp/internal/flow"
	"github.com/crp-eda/crp/internal/ispd"
)

func main() {
	spec := ispd.Spec{
		Name:        "quickstart",
		Node:        "n32",
		Cells:       600,
		Nets:        520,
		Utilisation: 0.88,
		Hotspots:    2,
		IOFraction:  0.03,
		Seed:        42,
	}

	cfg := flow.DefaultConfig()

	// Each flow gets its own fresh copy of the design, exactly as two
	// independent tool runs would.
	d1, err := ispd.Generate(spec)
	if err != nil {
		log.Fatal(err)
	}
	base := flow.RunBaseline(context.Background(), d1, cfg)

	d2, err := ispd.Generate(spec)
	if err != nil {
		log.Fatal(err)
	}
	crp := flow.RunCRP(context.Background(), d2, 5, cfg)

	fmt.Println("=== CR&P quickstart ===")
	st := d2.Stats()
	fmt.Printf("circuit: %d cells, %d nets, %.0f%% utilisation, %s node\n\n",
		st.Cells, st.Nets, st.Utilisation*100, st.Node)

	fmt.Printf("baseline  : %v  (%.2fs)\n", base.Metrics, base.Timings.Total.Seconds())
	fmt.Printf("CR&P k=5  : %v  (%.2fs)\n", crp.Metrics, crp.Timings.Total.Seconds())

	imp := eval.Compare(base.Metrics, crp.Metrics)
	fmt.Printf("\nimprovement over baseline: wirelength %.2f%%, vias %.2f%%, DRV delta %+d\n",
		imp.WirelengthPct, imp.ViasPct, imp.DRVDelta)

	total := 0
	for _, it := range crp.CRPStats.Iterations {
		total += it.MovedCells
	}
	fmt.Printf("CR&P moved %d cells over %d iterations\n", total, len(crp.CRPStats.Iterations))
}
