module github.com/crp-eda/crp

go 1.22
