// Package crpbench holds the benchmark harness that regenerates every table
// and figure of the paper's evaluation section (see DESIGN.md for the
// experiment index):
//
//	BenchmarkTable2Stats     — Table II, benchmark statistics
//	BenchmarkTable3/<name>   — Table III, the four flows per circuit; via
//	                           and wirelength improvements are attached as
//	                           custom benchmark metrics
//	BenchmarkFig2Runtime     — Fig. 2, flow runtime comparison
//	BenchmarkFig3Breakdown   — Fig. 3, CR&P phase breakdown percentages
//	BenchmarkAblation*       — the design-choice ablations DESIGN.md lists
//
// Benchmarks run at a reduced scale (CRP_BENCH_SCALE, default 0.004) so
// `go test -bench=. -benchmem` finishes on a laptop; cmd/experiments runs
// the full-scale sweep.
package crpbench

import (
	"context"
	"io"
	"os"
	"strconv"
	"testing"

	"github.com/crp-eda/crp/internal/crp"
	"github.com/crp-eda/crp/internal/db"
	"github.com/crp-eda/crp/internal/eval"
	"github.com/crp-eda/crp/internal/experiments"
	"github.com/crp-eda/crp/internal/flow"
	"github.com/crp-eda/crp/internal/ispd"
)

func benchScale() float64 {
	if s := os.Getenv("CRP_BENCH_SCALE"); s != "" {
		if v, err := strconv.ParseFloat(s, 64); err == nil && v > 0 {
			return v
		}
	}
	return 0.004
}

// BenchmarkTable2Stats generates the ten-circuit suite and computes its
// statistics — the work behind Table II.
func BenchmarkTable2Stats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := experiments.Table2(io.Discard, benchScale()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3 runs the four Table III flows per circuit and reports the
// improvement percentages as custom metrics (viaImp%, wlImp% for k=10).
func BenchmarkTable3(b *testing.B) {
	for idx, spec := range ispd.Suite(benchScale()) {
		spec := spec
		idx := idx
		b.Run(spec.Name, func(b *testing.B) {
			opts := experiments.DefaultOptions()
			opts.Scale = benchScale()
			opts.Circuits = []int{idx}
			opts.SOTABudget = 0
			var lastVia, lastWL float64
			for i := 0; i < b.N; i++ {
				res, err := experiments.Run(opts)
				if err != nil {
					b.Fatal(err)
				}
				cr := res[0]
				imp := eval.Compare(cr.Baseline.Metrics, cr.K10.Metrics)
				lastVia, lastWL = imp.ViasPct, imp.WirelengthPct
			}
			b.ReportMetric(lastVia, "viaImp%")
			b.ReportMetric(lastWL, "wlImp%")
		})
	}
}

// BenchmarkFig2Runtime measures the four flow variants on one mid-suite
// circuit; the benchmark time of each sub-benchmark is the figure's bar.
func BenchmarkFig2Runtime(b *testing.B) {
	spec := ispd.Suite(benchScale())[4]
	cfg := flow.DefaultConfig()
	newDesign := func(b *testing.B) *db.Design {
		d, err := ispd.Generate(spec)
		if err != nil {
			b.Fatal(err)
		}
		return d
	}
	b.Run("baseline", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			d := newDesign(b)
			b.StartTimer()
			flow.RunBaseline(context.Background(), d, cfg)
		}
	})
	b.Run("sota18", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			d := newDesign(b)
			b.StartTimer()
			flow.RunSOTA(context.Background(), d, cfg)
		}
	})
	b.Run("crp_k1", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			d := newDesign(b)
			b.StartTimer()
			flow.RunCRP(context.Background(), d, 1, cfg)
		}
	})
	b.Run("crp_k10", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			d := newDesign(b)
			b.StartTimer()
			flow.RunCRP(context.Background(), d, 10, cfg)
		}
	})
}

// BenchmarkFig3Breakdown runs the CR&P k=10 flow and reports the Fig. 3
// phase percentages as custom metrics.
func BenchmarkFig3Breakdown(b *testing.B) {
	spec := ispd.Suite(benchScale())[6]
	cfg := flow.DefaultConfig()
	var t flow.Timings
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		d, err := ispd.Generate(spec)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		res := flow.RunCRP(context.Background(), d, 10, cfg)
		t = res.Timings
	}
	total := t.Total.Seconds()
	if total > 0 {
		pct := func(s float64) float64 { return s / total * 100 }
		b.ReportMetric(pct(t.GlobalRoute.Seconds()), "GR%")
		b.ReportMetric(pct(t.CRPPhases.GCP.Seconds()), "GCP%")
		b.ReportMetric(pct(t.CRPPhases.ECC.Seconds()), "ECC%")
		b.ReportMetric(pct(t.CRPPhases.UD.Seconds()), "UD%")
		b.ReportMetric(pct(t.CRPPhases.Misc().Seconds()), "Misc%")
		b.ReportMetric(pct(t.DetailRoute.Seconds()), "DR%")
	}
}

// ablationRun executes CR&P k=5 with a mutated config and reports the via
// improvement over the shared baseline.
func ablationRun(b *testing.B, mutate func(*crp.Config)) {
	spec := ispd.Suite(benchScale())[4]
	cfg := flow.DefaultConfig()
	mutate(&cfg.CRP)
	var viaImp float64
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		d1, err := ispd.Generate(spec)
		if err != nil {
			b.Fatal(err)
		}
		base := flow.RunBaseline(context.Background(), d1, flow.DefaultConfig())
		d2, err := ispd.Generate(spec)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		res := flow.RunCRP(context.Background(), d2, 5, cfg)
		viaImp = eval.Compare(base.Metrics, res.Metrics).ViasPct
	}
	b.ReportMetric(viaImp, "viaImp%")
}

// BenchmarkAblationFull is the reference point: the paper's configuration.
func BenchmarkAblationFull(b *testing.B) {
	ablationRun(b, func(*crp.Config) {})
}

// BenchmarkAblationLengthOnlyCost disables the Eq. 10 congestion penalty —
// the [18]-style cost — isolating the first reason the paper credits for
// beating the state of the art.
func BenchmarkAblationLengthOnlyCost(b *testing.B) {
	ablationRun(b, func(c *crp.Config) { c.CostMode = crp.LengthOnly })
}

// BenchmarkAblationNoPriority removes the criticality ordering of
// Algorithm 1 — the second reason the paper credits.
func BenchmarkAblationNoPriority(b *testing.B) {
	ablationRun(b, func(c *crp.Config) { c.NoPriority = true })
}

// BenchmarkAblationGamma sweeps the critical-set fraction around the
// paper's 0.6.
func BenchmarkAblationGamma(b *testing.B) {
	for _, gamma := range []float64{0.2, 0.6, 0.9} {
		gamma := gamma
		b.Run(gammaName(gamma), func(b *testing.B) {
			ablationRun(b, func(c *crp.Config) { c.Gamma = gamma })
		})
	}
}

func gammaName(g float64) string {
	return "gamma_" + strconv.FormatFloat(g, 'f', 1, 64)
}

// BenchmarkAblationWindow sweeps the legalizer window around the paper's
// 20 sites x 5 rows.
func BenchmarkAblationWindow(b *testing.B) {
	for _, w := range []struct{ sites, rows int }{{10, 3}, {20, 5}, {40, 7}} {
		w := w
		b.Run("w"+strconv.Itoa(w.sites)+"x"+strconv.Itoa(w.rows), func(b *testing.B) {
			ablationRun(b, func(c *crp.Config) {
				c.Legal.NSites = w.sites
				c.Legal.NRows = w.rows
			})
		})
	}
}
